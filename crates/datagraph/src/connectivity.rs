//! The connectivity oracle: precomputed distance labels that replace
//! per-query BFS on the read path.
//!
//! Connection checks are the inner loop of every top-k query (Definition 4
//! demands a connected witness subgraph, and the compactness score needs
//! pairwise distances), and breadth-first search made them cost tens of
//! millions of node visits per query on cross-linked corpora.  The oracle
//! moves that work to build time: every node carries a small sorted list of
//! `(hub, distance)` entries — a *2-hop cover* — and a bounded shortest-path
//! query becomes a merge-scan intersection of two such lists.
//!
//! Two labeling schemes are chosen **per document component**:
//!
//! * **Tree labels** (centroid decomposition) for documents untouched by any
//!   cross edge.  Such a document is a pure tree, so recursively splitting it
//!   at centroids yields `O(log n)` labels per node that answer *exact*
//!   distances at any depth.  These are computed per document in
//!   [`crate::DataGraph::build_shard`] and adopted at merge time, rebased to
//!   the graph's dense node indices.
//! * **Hub labels** (pruned landmark labeling, bounded at
//!   [`LABEL_RADIUS`]) for components with cross edges.  Hubs are visited in
//!   descending-degree order; each runs a pruned BFS of radius
//!   [`LABEL_RADIUS`], so labels stay small and queries are exact for every
//!   distance `<= LABEL_RADIUS`.  Queries with a deeper `max_depth` fall back
//!   to BFS — the default search depth (12) is below the radius, so the hot
//!   path never does.
//!
//! Both schemes store their labels in one flat CSR arena (`offsets`, `hubs`,
//! `dists`) alongside the adjacency built in [`crate::DataGraph::merge`], and
//! both are queried by the same intersection loop.  The number of label
//! entries scanned is counted as `label_probes` — the successor of the old
//! `bfs_visits` counter in query profiles.

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, DocId};

use crate::graph::{DataGraph, Edge, GraphShard};

/// Exactness radius of the hub labels: distances up to this bound are
/// answered exactly from the labels; deeper queries fall back to BFS.  Kept
/// above the default search depth (12) so the top-k hot path never falls
/// back.
pub const LABEL_RADIUS: u16 = 16;

/// Label distances at or above this value mean "not covered by the labels"
/// (either no common hub within the radius, or a saturated tree distance in a
/// document deeper than `u16` can express).
pub(crate) const SATURATED: u32 = u16::MAX as u32;

const UNSET: u32 = u32::MAX;

/// Labeling scheme of a document (shared by every document of its
/// component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelScheme {
    /// Centroid-decomposition tree labels: exact at any distance.  Used for
    /// documents with no cross edges (always singleton components).
    Tree,
    /// Radius-bounded pruned landmark labels: exact up to
    /// [`LABEL_RADIUS`].  Used for components touched by cross edges.
    Hub,
}

/// The precomputed distance-label substrate of a [`DataGraph`].
///
/// Built once in [`DataGraph::merge`] from the per-document shard labels plus
/// a merge-time landmark pass over cross-linked components; immutable
/// afterwards.  All label state lives in three flat arrays, CSR-style: node
/// `i`'s entries are `hubs[offsets[i]..offsets[i+1]]` (sorted ascending) with
/// parallel distances in `dists`.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityIndex {
    /// Exactness radius of the hub labels ([`LABEL_RADIUS`] at build time).
    pub(crate) radius: u16,
    /// Labeling scheme per document.
    pub(crate) schemes: Vec<LabelScheme>,
    /// Per-node label offsets, length `node_count + 1`.
    pub(crate) offsets: Vec<u32>,
    /// Label keys, sorted ascending per node: centroid dense indices for
    /// tree-labeled nodes, hub ranks for hub-labeled nodes.  The two key
    /// spaces never meet — nodes of different schemes are always in
    /// different components, which the query rejects before intersecting.
    pub(crate) hubs: Vec<u32>,
    /// Distance to each label key (parallel to `hubs`).
    pub(crate) dists: Vec<u16>,
}

impl ConnectivityIndex {
    /// Exactness radius of the hub labels: queries bounded by `max_depth <=
    /// radius()` are answered from the labels alone.
    pub fn radius(&self) -> usize {
        self.radius as usize
    }

    /// Labeling scheme of a document ([`LabelScheme::Tree`] for documents
    /// outside the collection, whose empty labels force the BFS fallback).
    pub fn scheme(&self, doc: DocId) -> LabelScheme {
        self.schemes.get(doc.index()).copied().unwrap_or(LabelScheme::Tree)
    }

    /// Total number of `(hub, distance)` label entries.
    pub fn label_entries(&self) -> usize {
        self.hubs.len()
    }

    /// Bytes occupied by the label arenas (the oracle's memory footprint).
    pub fn label_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.hubs.len() * std::mem::size_of::<u32>()
            + self.dists.len() * std::mem::size_of::<u16>()
            + self.schemes.len() * std::mem::size_of::<LabelScheme>()
    }

    /// True when the index was built over a graph of `node_count` nodes (the
    /// traversal layer's guard before trusting the labels).
    pub fn covers(&self, node_count: usize) -> bool {
        self.offsets.len() == node_count + 1
    }

    /// Label entries of one dense node.
    fn entries(&self, dense: u32) -> (&[u32], &[u16]) {
        let lo = self.offsets[dense as usize] as usize;
        let hi = self.offsets[dense as usize + 1] as usize;
        (&self.hubs[lo..hi], &self.dists[lo..hi])
    }

    /// Minimum `dist(a, hub) + dist(hub, b)` over the common label keys of
    /// two dense nodes — the 2-hop distance query.  Returns `>= SATURATED`
    /// when the labels do not cover the pair.  Every entry scanned counts one
    /// probe.
    pub(crate) fn label_distance(&self, a: u32, b: u32, probes: &mut u64) -> u32 {
        let (a_hubs, a_dists) = self.entries(a);
        let (b_hubs, b_dists) = self.entries(b);
        let (mut i, mut j) = (0usize, 0usize);
        let mut best = UNSET;
        while i < a_hubs.len() && j < b_hubs.len() {
            *probes += 1;
            let (ha, hb) = (a_hubs[i], b_hubs[j]);
            if ha == hb {
                let d = a_dists[i] as u32 + b_dists[j] as u32;
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            } else if ha < hb {
                i += 1;
            } else {
                j += 1;
            }
        }
        best
    }

    /// Builds the index at merge time: adopts shard tree labels for
    /// cross-edge-free documents (recomputing them from the adjacency when a
    /// shard is missing) and runs the pruned landmark pass over the
    /// cross-linked components.  Deterministic: depends only on the frozen
    /// adjacency and the collection, never on shard order.
    pub(crate) fn assemble(
        collection: &Collection,
        graph: &DataGraph,
        shards: &[GraphShard],
        edges: &[Edge],
    ) -> ConnectivityIndex {
        let docs = collection.len();
        let node_count = graph.node_count();
        let mut has_cross = vec![false; docs];
        for edge in edges {
            has_cross[edge.from.doc.index()] = true;
            has_cross[edge.to.doc.index()] = true;
        }
        let schemes: Vec<LabelScheme> = has_cross
            .iter()
            .map(|&c| if c { LabelScheme::Hub } else { LabelScheme::Tree })
            .collect();

        let mut labels: Vec<Vec<(u32, u16)>> = vec![Vec::new(); node_count];

        // Tree documents: rebase the shard labels to dense indices (adding
        // the document base keeps each node's entries sorted).
        let mut shard_of_doc: Vec<Option<&GraphShard>> = vec![None; docs];
        for shard in shards {
            if let Some(doc) = shard.doc() {
                if doc.index() < docs {
                    shard_of_doc[doc.index()] = Some(shard);
                }
            }
        }
        for doc in collection.documents() {
            if schemes[doc.id.index()] == LabelScheme::Hub {
                continue;
            }
            let base = graph.doc_base(doc.id);
            let len = doc.len();
            match shard_of_doc[doc.id.index()] {
                Some(shard) if shard.tree_offsets.len() == len + 1 => {
                    for ord in 0..len {
                        let range =
                            shard.tree_offsets[ord] as usize..shard.tree_offsets[ord + 1] as usize;
                        for k in range {
                            labels[base as usize + ord]
                                .push((base + shard.tree_hubs[k], shard.tree_dists[k]));
                        }
                    }
                }
                _ => {
                    // No shard (or a foreign one): the document has no cross
                    // edges, so its CSR adjacency *is* the tree — relabel it
                    // here with the same algorithm the shard phase uses.
                    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); len];
                    for (ord, slot) in adj.iter_mut().enumerate() {
                        for &(target, _) in graph.neighbors_dense(base + ord as u32) {
                            slot.push(target - base);
                        }
                    }
                    let (offsets, hubs, dists) = centroid_tree_labels(&adj);
                    for ord in 0..len {
                        for k in offsets[ord] as usize..offsets[ord + 1] as usize {
                            labels[base as usize + ord].push((base + hubs[k], dists[k]));
                        }
                    }
                }
            }
        }

        // Hub components: pruned landmark labeling, hubs in descending-degree
        // order (dense index breaks ties), each BFS bounded at the radius and
        // pruned by the labels accumulated so far.
        let mut hub_nodes: Vec<u32> = Vec::new();
        for doc in collection.documents() {
            if schemes[doc.id.index()] == LabelScheme::Hub {
                let base = graph.doc_base(doc.id);
                hub_nodes.extend(base..base + doc.len() as u32);
            }
        }
        hub_nodes.sort_by_key(|&d| (std::cmp::Reverse(graph.neighbors_dense(d).len()), d));

        let mut hub_dist: Vec<u32> = vec![UNSET; node_count];
        let mut to_hub: Vec<u32> = vec![UNSET; hub_nodes.len()];
        let mut queue: Vec<u32> = Vec::new();
        let mut touched: Vec<u32> = Vec::new();
        for (rank, &hub) in hub_nodes.iter().enumerate() {
            // Scatter the hub's own labels so the pruning query is O(|label|).
            for &(r, d) in &labels[hub as usize] {
                to_hub[r as usize] = d as u32;
            }
            queue.clear();
            touched.clear();
            hub_dist[hub as usize] = 0;
            queue.push(hub);
            touched.push(hub);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                let du = hub_dist[u as usize];
                // Prune when an earlier hub already certifies a distance no
                // worse than the BFS level — the classic PLL cut that keeps
                // labels near-minimal.
                let mut q = UNSET;
                for &(r, d) in &labels[u as usize] {
                    let via = to_hub[r as usize].saturating_add(d as u32);
                    if via < q {
                        q = via;
                    }
                }
                if q <= du {
                    continue;
                }
                labels[u as usize].push((rank as u32, du as u16));
                if du < LABEL_RADIUS as u32 {
                    for &(next, _) in graph.neighbors_dense(u) {
                        if hub_dist[next as usize] == UNSET {
                            hub_dist[next as usize] = du + 1;
                            queue.push(next);
                            touched.push(next);
                        }
                    }
                }
            }
            for &t in &touched {
                hub_dist[t as usize] = UNSET;
            }
            for &(r, _) in &labels[hub as usize] {
                to_hub[r as usize] = UNSET;
            }
        }

        // Flatten into the CSR arenas.
        let mut offsets = Vec::with_capacity(node_count + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for l in &labels {
            total += l.len() as u32;
            offsets.push(total);
        }
        let mut hubs = Vec::with_capacity(total as usize);
        let mut dists = Vec::with_capacity(total as usize);
        for l in &labels {
            debug_assert!(l.windows(2).all(|w| w[0].0 < w[1].0), "label keys must be sorted");
            for &(h, d) in l {
                hubs.push(h);
                dists.push(d);
            }
        }
        ConnectivityIndex { radius: LABEL_RADIUS, schemes, offsets, hubs, dists }
    }
}

/// Centroid-decomposition distance labels of a tree, as a per-node CSR
/// (`offsets`, `hubs`, `dists`) with each node's entries sorted by hub.
///
/// The tree is recursively split at centroids; every node records its exact
/// tree distance to each centroid "above" it in the decomposition, giving
/// `O(log n)` entries per node.  For any pair, the decomposition ancestor
/// that separates them lies on their tree path, so the 2-hop intersection
/// over these labels returns the exact distance at any depth.  Distances
/// deeper than `u16` saturate, which the query layer treats as "not covered"
/// and answers by BFS instead.
pub(crate) fn centroid_tree_labels(adj: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>, Vec<u16>) {
    let n = adj.len();
    let mut labels: Vec<Vec<(u32, u16)>> = vec![Vec::new(); n];
    let mut removed = vec![false; n];
    let mut comp: Vec<u32> = Vec::new();
    let mut parent: Vec<u32> = vec![UNSET; n];
    let mut size: Vec<u32> = vec![0; n];
    let mut dist: Vec<u16> = vec![0; n];
    let mut in_comp: Vec<bool> = vec![false; n];
    let mut seeds: Vec<u32> = Vec::new();

    for start in 0..n as u32 {
        if !labels[start as usize].is_empty() || removed[start as usize] {
            continue;
        }
        seeds.clear();
        seeds.push(start);
        while let Some(seed) = seeds.pop() {
            // Collect the alive component of `seed` in BFS order.
            comp.clear();
            comp.push(seed);
            in_comp[seed as usize] = true;
            parent[seed as usize] = UNSET;
            let mut head = 0;
            while head < comp.len() {
                let u = comp[head];
                head += 1;
                for &w in &adj[u as usize] {
                    if !removed[w as usize] && !in_comp[w as usize] {
                        in_comp[w as usize] = true;
                        parent[w as usize] = u;
                        comp.push(w);
                    }
                }
            }
            // Subtree sizes in reverse BFS order, then the classic centroid
            // walk: descend into any child subtree heavier than half.
            for &u in &comp {
                size[u as usize] = 1;
            }
            for &u in comp.iter().rev() {
                if parent[u as usize] != UNSET {
                    size[parent[u as usize] as usize] += size[u as usize];
                }
            }
            let half = comp.len() as u32 / 2;
            let mut centroid = seed;
            'walk: loop {
                for &w in &adj[centroid as usize] {
                    if in_comp[w as usize]
                        && !removed[w as usize]
                        && parent[w as usize] == centroid
                        && size[w as usize] > half
                    {
                        centroid = w;
                        continue 'walk;
                    }
                }
                break;
            }
            // BFS from the centroid labels the whole component with exact
            // tree distances (the path to a decomposition ancestor never
            // leaves its component).
            for &u in &comp {
                in_comp[u as usize] = false;
            }
            comp.clear();
            comp.push(centroid);
            in_comp[centroid as usize] = true;
            dist[centroid as usize] = 0;
            let mut head = 0;
            while head < comp.len() {
                let u = comp[head];
                head += 1;
                let du = dist[u as usize];
                labels[u as usize].push((centroid, du));
                for &w in &adj[u as usize] {
                    if !removed[w as usize] && !in_comp[w as usize] {
                        in_comp[w as usize] = true;
                        dist[w as usize] = du.saturating_add(1);
                        comp.push(w);
                    }
                }
            }
            for &u in &comp {
                in_comp[u as usize] = false;
            }
            removed[centroid as usize] = true;
            for &w in &adj[centroid as usize] {
                if !removed[w as usize] {
                    seeds.push(w);
                }
            }
        }
    }

    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut total = 0u32;
    for l in &mut labels {
        l.sort_unstable_by_key(|&(h, _)| h);
        total += l.len() as u32;
        offsets.push(total);
    }
    let mut hubs = Vec::with_capacity(total as usize);
    let mut dists = Vec::with_capacity(total as usize);
    for l in &labels {
        for &(h, d) in l {
            hubs.push(h);
            dists.push(d);
        }
    }
    (offsets, hubs, dists)
}
