//! The SEDA data graph (Definition 2).

use std::cell::Cell;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, DocId, NodeId, NodeKind};

use crate::config::GraphConfig;
use crate::connectivity::{centroid_tree_labels, ConnectivityIndex};

/// Kind of an edge in the data graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Parent/child relationship within a document (includes attributes).
    ParentChild,
    /// IDREF attribute referencing an ID attribute.
    IdRef,
    /// XLink/XPointer reference.
    XLink,
    /// Value-based (primary-key / foreign-key) relationship.
    ValueBased,
}

/// A directed cross-document or intra-document non-tree edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Relationship kind.
    pub kind: EdgeKind,
}

thread_local! {
    static COMPONENT_BUILDS: Cell<usize> = const { Cell::new(0) };
}

/// Number of document-component computations performed **on the calling
/// thread** since it started.
///
/// Document components are a build-time artifact of [`DataGraph::merge`];
/// searchers must never recompute them per query.  Regression tests read this
/// counter before and after a batch of searches to pin that invariant (the
/// counter is thread-local so concurrently running tests cannot disturb each
/// other).
pub fn doc_component_builds_on_this_thread() -> usize {
    COMPONENT_BUILDS.with(Cell::get)
}

/// The data graph in CSR (compressed sparse row) layout.
///
/// Nodes are addressed by **dense indices**: node `(doc, ordinal)` maps to
/// `doc_offsets[doc] + ordinal`, so every per-node lookup on the traversal hot
/// path is an array access instead of a `HashMap` probe.  Two adjacency lists
/// are materialised at merge time:
///
/// * the **full adjacency** (tree edges implicit in the documents plus all
///   non-tree edges), which BFS/compactness traverse, and
/// * the **cross-edge adjacency** (IDREF, XLink and value-based edges only,
///   symmetric: every edge is stored under both endpoints), which backs
///   [`DataGraph::cross_neighbors`] and [`DataGraph::edges`].
///
/// The per-document connected components over cross edges (the pruning
/// structure the top-k searchers use) are computed once here as well.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataGraph {
    /// Prefix sums of document node counts: dense index of `(doc, ord)` is
    /// `doc_offsets[doc.index()] + ord`; length is `#docs + 1`.
    pub(crate) doc_offsets: Vec<u32>,
    /// Full adjacency offsets, length `node_count + 1`.
    pub(crate) adj_offsets: Vec<u32>,
    /// Full adjacency targets as dense indices (parent first, then children
    /// in document order, then cross edges in insertion order).
    pub(crate) adj_targets: Vec<(u32, EdgeKind)>,
    /// Cross-edge adjacency offsets, length `node_count + 1`.
    pub(crate) cross_offsets: Vec<u32>,
    /// Cross-edge targets (symmetric), in edge insertion order.
    pub(crate) cross_targets: Vec<(NodeId, EdgeKind)>,
    /// Connected-component id of every document (components over cross
    /// edges), indexed by document.
    pub(crate) doc_component: Vec<u32>,
    /// Precomputed distance labels (the connectivity oracle), built at merge
    /// time from the shard tree labels plus a landmark pass over cross-linked
    /// components.
    pub(crate) connectivity: ConnectivityIndex,
    pub(crate) edge_count: usize,
    id_nodes: usize,
    idref_nodes: usize,
    value_pairs: usize,
}

/// Per-document raw material for the data graph, produced by
/// [`DataGraph::build_shard`] and resolved across documents by
/// [`DataGraph::merge`].
///
/// The shard phase records everything that can be discovered from a single
/// document — ID definitions, IDREF/XLink references, and the contents of
/// value-key endpoints — without resolving anything.  Resolution (ID lookup
/// and value joins) is inherently cross-document and happens once at merge
/// time over the combined symbol maps.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphShard {
    doc: Option<DocId>,
    /// `(id value, owning element)` pairs, in document order.
    id_entries: Vec<(String, NodeId)>,
    /// `(referencing element, lookup key, kind)` triples, in document order.
    references: Vec<(NodeId, String, EdgeKind)>,
    /// Referencing attribute instances seen (including unresolvable ones).
    reference_attrs: usize,
    /// Per value-key spec: `(content, node)` pairs on the primary side.
    primary_values: Vec<Vec<(String, NodeId)>>,
    /// Per value-key spec: `(content, node)` pairs on the foreign side.
    foreign_values: Vec<Vec<(String, NodeId)>>,
    /// Centroid-decomposition label offsets of the document tree, length
    /// `doc len + 1`.  Adopted at merge for documents that end up with no
    /// cross edges; discarded (and replaced by hub labels) otherwise.
    pub(crate) tree_offsets: Vec<u32>,
    /// Tree label keys: centroid ordinals within the document.
    pub(crate) tree_hubs: Vec<u32>,
    /// Tree label distances (parallel to `tree_hubs`).
    pub(crate) tree_dists: Vec<u16>,
}

impl GraphShard {
    /// The document this shard was built from.
    pub fn doc(&self) -> Option<DocId> {
        self.doc
    }

    /// Number of ID attribute instances recorded in this shard.
    pub fn id_entry_count(&self) -> usize {
        self.id_entries.len()
    }

    /// Number of IDREF/XLink attribute instances seen in this shard.
    pub fn reference_attribute_count(&self) -> usize {
        self.reference_attrs
    }
}

impl DataGraph {
    /// Builds the data graph over a collection.
    ///
    /// * IDREF/XLink edges connect the *element owning* the referencing
    ///   attribute to the *element owning* the referenced ID attribute.
    /// * Value-based edges connect the nodes named by the configured
    ///   [`crate::config::ValueKeySpec`]s whenever their contents are equal.
    ///
    /// This is the sequential reference path; it is equivalent to building
    /// one shard per document with [`DataGraph::build_shard`] and resolving
    /// them with [`DataGraph::merge`].
    pub fn build(collection: &Collection, config: &GraphConfig) -> Self {
        let shards = collection
            .documents()
            .map(|doc| Self::build_shard(collection, doc.id, config))
            .collect();
        Self::merge(collection, shards)
    }

    /// Scans a single document for graph raw material (the per-shard phase):
    /// ID definitions, IDREF/XLink references and value-key endpoint
    /// contents.  No cross-document resolution happens here.
    pub fn build_shard(collection: &Collection, doc: DocId, config: &GraphConfig) -> GraphShard {
        let mut shard = GraphShard { doc: Some(doc), ..GraphShard::default() };
        let Ok(document) = collection.document(doc) else { return shard };

        for (_, node) in document.iter() {
            if node.kind != NodeKind::Attribute {
                continue;
            }
            let name = collection.symbols().resolve(node.name);
            if config.is_id_attribute(name) {
                if let (Some(value), Some(parent)) = (node.text.as_deref(), node.parent) {
                    shard.id_entries.push((value.trim().to_string(), NodeId::new(doc, parent)));
                }
            }
            let kind = if config.is_idref_attribute(name) {
                Some(EdgeKind::IdRef)
            } else if config.is_xlink_attribute(name) {
                Some(EdgeKind::XLink)
            } else {
                None
            };
            let Some(kind) = kind else { continue };
            shard.reference_attrs += 1;
            let Some(parent) = node.parent else { continue };
            let Some(value) = node.text.as_deref() else { continue };
            // XLink values may carry a fragment (`doc.xml#id`); use the
            // fragment if present.
            let key = value.rsplit('#').next().unwrap_or(value).trim();
            shard.references.push((NodeId::new(doc, parent), key.to_string(), kind));
        }

        // Value-key endpoints of this document, per spec.
        shard.primary_values = Vec::with_capacity(config.value_keys.len());
        shard.foreign_values = Vec::with_capacity(config.value_keys.len());
        for spec in &config.value_keys {
            let mut primary = Vec::new();
            let mut foreign = Vec::new();
            if let Some(path) = collection.paths().get_str(collection.symbols(), &spec.primary_path)
            {
                for ordinal in document.nodes_with_path(path) {
                    primary.push((document.content(ordinal), NodeId::new(doc, ordinal)));
                }
            }
            if let Some(path) = collection.paths().get_str(collection.symbols(), &spec.foreign_path)
            {
                for ordinal in document.nodes_with_path(path) {
                    foreign.push((document.content(ordinal), NodeId::new(doc, ordinal)));
                }
            }
            shard.primary_values.push(primary);
            shard.foreign_values.push(foreign);
        }

        // Tree distance labels of this document (parent/child edges only, in
        // the same order the merged CSR adjacency will use).  The merge phase
        // adopts them verbatim for documents that end up with no cross edges.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); document.len()];
        for (ordinal, node) in document.iter() {
            let slot = &mut adj[ordinal as usize];
            if let Some(parent) = node.parent {
                slot.push(parent);
            }
            slot.extend_from_slice(&node.children);
        }
        let (tree_offsets, tree_hubs, tree_dists) = centroid_tree_labels(&adj);
        shard.tree_offsets = tree_offsets;
        shard.tree_hubs = tree_hubs;
        shard.tree_dists = tree_dists;
        shard
    }

    /// Resolves per-document shards into the full data graph (the merge phase
    /// of the shard → merge build lifecycle): ID/IDREF and XLink references
    /// are looked up in the combined ID map, value-key joins run over the
    /// combined endpoint lists, and the CSR adjacency plus the per-document
    /// components are materialised over the collection's node arenas.
    ///
    /// Shards are processed in ascending document order regardless of input
    /// order, so the result is deterministic and identical to the sequential
    /// [`DataGraph::build`].
    pub fn merge(collection: &Collection, mut shards: Vec<GraphShard>) -> Self {
        shards.sort_by_key(|s| s.doc);

        // Dense node numbering: prefix sums of document lengths.
        let mut doc_offsets = Vec::with_capacity(collection.len() + 1);
        doc_offsets.push(0);
        let mut total = 0u32;
        for doc in collection.documents() {
            total += doc.len() as u32;
            doc_offsets.push(total);
        }
        let mut graph = DataGraph { doc_offsets, ..DataGraph::default() };

        // Phase 1: combined ID map.  Later documents overwrite earlier ones
        // for a duplicated ID value, matching the sequential build.
        let mut id_map: HashMap<String, NodeId> = HashMap::new();
        for shard in &shards {
            for (value, owner) in &shard.id_entries {
                id_map.insert(value.clone(), *owner);
                graph.id_nodes += 1;
            }
        }

        // Phase 2 + 3 collect resolved cross edges before the CSR is frozen.
        let mut edges: Vec<Edge> = Vec::new();

        // Phase 2: resolve IDREF / XLink references.
        for shard in &shards {
            graph.idref_nodes += shard.reference_attrs;
            for (source, key, kind) in &shard.references {
                if let Some(&target) = id_map.get(key.as_str()) {
                    edges.push(Edge { from: *source, to: target, kind: *kind });
                }
            }
        }

        // Phase 3: value-based joins over the combined endpoint lists.
        let spec_count = shards.iter().map(|s| s.primary_values.len()).max().unwrap_or(0);
        for spec in 0..spec_count {
            let mut primary_values: HashMap<&str, Vec<NodeId>> = HashMap::new();
            for shard in &shards {
                for (content, node) in shard.primary_values.get(spec).into_iter().flatten() {
                    primary_values.entry(content.as_str()).or_default().push(*node);
                }
            }
            for shard in &shards {
                for (content, node) in shard.foreign_values.get(spec).into_iter().flatten() {
                    if let Some(targets) = primary_values.get(content.as_str()) {
                        for &target in targets {
                            if target != *node {
                                edges.push(Edge {
                                    from: *node,
                                    to: target,
                                    kind: EdgeKind::ValueBased,
                                });
                                graph.value_pairs += 1;
                            }
                        }
                    }
                }
            }
        }
        graph.edge_count = edges.len();

        graph.freeze_adjacency(collection, &edges);
        graph.doc_component = compute_doc_components(collection.len(), &edges);
        let connectivity = ConnectivityIndex::assemble(collection, &graph, &shards, &edges);
        graph.connectivity = connectivity;
        graph
    }

    /// Builds both CSR adjacency lists from the resolved cross edges.
    fn freeze_adjacency(&mut self, collection: &Collection, edges: &[Edge]) {
        let node_count = self.node_count();

        // Cross-edge CSR (symmetric).  Two counting passes keep the per-node
        // target order identical to the former per-node `Vec` push order.
        let mut cross_degree = vec![0u32; node_count];
        for edge in edges {
            cross_degree[self.dense_unchecked(edge.from) as usize] += 1;
            cross_degree[self.dense_unchecked(edge.to) as usize] += 1;
        }
        self.cross_offsets = prefix_sums(&cross_degree);
        let mut cursor: Vec<u32> = self.cross_offsets[..node_count].to_vec();
        self.cross_targets =
            vec![(NodeId::new(DocId(0), 0), EdgeKind::ParentChild); edges.len() * 2];
        for edge in edges {
            for (a, b) in [(edge.from, edge.to), (edge.to, edge.from)] {
                let slot = &mut cursor[self.dense_unchecked(a) as usize];
                self.cross_targets[*slot as usize] = (b, edge.kind);
                *slot += 1;
            }
        }

        // Full adjacency CSR: parent, children (document order), then cross
        // edges — the same neighbour order the HashMap-based graph produced.
        let mut adj_degree = vec![0u32; node_count];
        for doc in collection.documents() {
            let base = self.doc_offsets[doc.id.index()];
            for (ordinal, node) in doc.iter() {
                let dense = (base + ordinal) as usize;
                adj_degree[dense] = node.parent.map(|_| 1).unwrap_or(0)
                    + node.children.len() as u32
                    + cross_degree[dense];
            }
        }
        self.adj_offsets = prefix_sums(&adj_degree);
        let total = *self.adj_offsets.last().unwrap_or(&0) as usize;
        self.adj_targets = vec![(0u32, EdgeKind::ParentChild); total];
        for doc in collection.documents() {
            let base = self.doc_offsets[doc.id.index()];
            for (ordinal, node) in doc.iter() {
                let dense = (base + ordinal) as usize;
                let mut slot = self.adj_offsets[dense] as usize;
                if let Some(parent) = node.parent {
                    self.adj_targets[slot] = (base + parent, EdgeKind::ParentChild);
                    slot += 1;
                }
                for &child in &node.children {
                    self.adj_targets[slot] = (base + child, EdgeKind::ParentChild);
                    slot += 1;
                }
                let cross =
                    self.cross_offsets[dense] as usize..self.cross_offsets[dense + 1] as usize;
                for i in cross {
                    let (target, kind) = self.cross_targets[i];
                    self.adj_targets[slot] = (self.dense_unchecked(target), kind);
                    slot += 1;
                }
            }
        }
    }

    /// Total number of nodes addressable in the graph (the collection's node
    /// count at merge time).
    pub fn node_count(&self) -> usize {
        *self.doc_offsets.last().unwrap_or(&0) as usize
    }

    /// Dense index of a node, or `None` when the node lies outside the
    /// collection the graph was built over.
    pub fn dense(&self, node: NodeId) -> Option<u32> {
        let doc = node.doc.index();
        if doc + 1 >= self.doc_offsets.len() {
            return None;
        }
        let base = self.doc_offsets[doc];
        let dense = base.checked_add(node.node)?;
        (dense < self.doc_offsets[doc + 1]).then_some(dense)
    }

    fn dense_unchecked(&self, node: NodeId) -> u32 {
        self.doc_offsets[node.doc.index()] + node.node
    }

    /// Dense index of a document's first node (ordinal 0).
    pub(crate) fn doc_base(&self, doc: DocId) -> u32 {
        self.doc_offsets[doc.index()]
    }

    /// The precomputed connectivity oracle (distance labels built at merge
    /// time).  The traversal layer answers `is_connected` / shortest-path
    /// queries from it instead of running BFS.
    pub fn connectivity(&self) -> &ConnectivityIndex {
        &self.connectivity
    }

    /// The `NodeId` of a dense index (inverse of [`DataGraph::dense`]).
    pub fn node_id(&self, dense: u32) -> NodeId {
        let doc = self.doc_offsets.partition_point(|&off| off <= dense) - 1;
        NodeId::new(DocId(doc as u32), dense - self.doc_offsets[doc])
    }

    /// Full neighbour list (tree plus non-tree edges) of a dense node index:
    /// parent first, then children in document order, then cross edges.
    pub fn neighbors_dense(&self, dense: u32) -> &[(u32, EdgeKind)] {
        let dense = dense as usize;
        &self.adj_targets[self.adj_offsets[dense] as usize..self.adj_offsets[dense + 1] as usize]
    }

    /// Number of distinct non-tree edges (each counted once).
    pub fn cross_edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of ID attribute instances seen.
    pub fn id_attribute_count(&self) -> usize {
        self.id_nodes
    }

    /// Number of IDREF/XLink attribute instances seen.
    pub fn reference_attribute_count(&self) -> usize {
        self.idref_nodes
    }

    /// Non-tree neighbours of a node.
    pub fn cross_neighbors(&self, node: NodeId) -> &[(NodeId, EdgeKind)] {
        match self.dense(node) {
            Some(dense) => {
                let dense = dense as usize;
                &self.cross_targets
                    [self.cross_offsets[dense] as usize..self.cross_offsets[dense + 1] as usize]
            }
            None => &[],
        }
    }

    /// All neighbours of a node: parent, children (tree edges from the
    /// document), plus non-tree edges.  The tree edges are materialised in
    /// the CSR adjacency at merge time, so no document access is needed.
    pub fn neighbors(&self, node: NodeId) -> Vec<(NodeId, EdgeKind)> {
        match self.dense(node) {
            Some(dense) => self
                .neighbors_dense(dense)
                .iter()
                .map(|&(target, kind)| (self.node_id(target), kind))
                .collect(),
            None => Vec::new(),
        }
    }

    /// All materialised non-tree edges, each reported once (from < to).
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for dense in 0..self.node_count() {
            // Walk the cross CSR directly; only endpoints of actual edges pay
            // for a dense → NodeId conversion.
            let range = self.cross_offsets[dense] as usize..self.cross_offsets[dense + 1] as usize;
            if range.is_empty() {
                continue;
            }
            let from = self.node_id(dense as u32);
            for &(to, kind) in &self.cross_targets[range] {
                if from < to {
                    out.push(Edge { from, to, kind });
                }
            }
        }
        out.sort_by_key(|e| (e.from, e.to));
        out
    }

    /// Connected-component id of a document (components over non-tree
    /// edges), or `u32::MAX` for documents outside the graph's collection.
    ///
    /// Components are computed once at merge time; the top-k searchers use
    /// them to prune candidate tuples spanning disconnected documents before
    /// paying for a breadth-first connectivity check.
    pub fn doc_component(&self, doc: DocId) -> u32 {
        self.doc_component.get(doc.index()).copied().unwrap_or(u32::MAX)
    }

    /// True when both nodes live in documents of the same connected
    /// component (a necessary condition for tuple connectivity).
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.doc_component(a.doc) == self.doc_component(b.doc)
    }

    /// Number of distinct document components.
    pub fn doc_component_count(&self) -> usize {
        self.doc_component.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0)
    }
}

fn prefix_sums(degrees: &[u32]) -> Vec<u32> {
    let mut offsets = Vec::with_capacity(degrees.len() + 1);
    let mut total = 0u32;
    offsets.push(0);
    for &d in degrees {
        total += d;
        offsets.push(total);
    }
    offsets
}

/// Union-find over documents connected by cross edges; component ids are
/// assigned densely in ascending document order, so the numbering is
/// deterministic.
fn compute_doc_components(docs: usize, edges: &[Edge]) -> Vec<u32> {
    COMPONENT_BUILDS.with(|c| c.set(c.get() + 1));
    let mut parent: Vec<u32> = (0..docs as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let grand = parent[parent[x as usize] as usize];
            parent[x as usize] = grand;
            x = grand;
        }
        x
    }
    for edge in edges {
        let a = find(&mut parent, edge.from.doc.0);
        let b = find(&mut parent, edge.to.doc.0);
        if a != b {
            parent[a as usize] = b;
        }
    }
    let mut component = vec![0u32; docs];
    let mut ids: HashMap<u32, u32> = HashMap::new();
    let mut next = 0u32;
    for doc in 0..docs as u32 {
        let root = find(&mut parent, doc);
        let id = *ids.entry(root).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        component[doc as usize] = id;
    }
    component
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ValueKeySpec;
    use seda_xmlstore::parse_collection;

    fn mondial_like() -> Collection {
        parse_collection(vec![
            (
                "sea.xml",
                r#"<sea id="sea-1"><name>Pacific Ocean</name>
                     <bordering country_idref="cty-us"/>
                     <bordering country_idref="cty-ph"/>
                   </sea>"#,
            ),
            (
                "us.xml",
                r#"<country id="cty-us"><name>United States</name>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                     </import_partners></economy>
                   </country>"#,
            ),
            ("ph.xml", r#"<country id="cty-ph"><name>Philippines</name></country>"#),
            (
                "china.xml",
                r#"<country id="cty-cn"><name>China</name>
                     <link href="cty-us"/>
                   </country>"#,
            ),
        ])
        .unwrap()
    }

    #[test]
    fn idref_edges_link_referencing_and_referenced_elements() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        // Two bordering -> country edges plus one XLink edge.
        assert_eq!(g.cross_edge_count(), 3);
        let kinds: Vec<EdgeKind> = g.edges().iter().map(|e| e.kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == EdgeKind::IdRef).count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == EdgeKind::XLink).count(), 1);
    }

    #[test]
    fn idref_edges_are_symmetric_for_traversal() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        for edge in g.edges() {
            assert!(g.cross_neighbors(edge.from).iter().any(|(n, _)| *n == edge.to));
            assert!(g.cross_neighbors(edge.to).iter().any(|(n, _)| *n == edge.from));
        }
    }

    #[test]
    fn dangling_references_produce_no_edges() {
        let c = parse_collection(vec![(
            "a.xml",
            r#"<root><child thing_idref="does-not-exist"/></root>"#,
        )])
        .unwrap();
        let g = DataGraph::build(&c, &GraphConfig::default());
        assert_eq!(g.cross_edge_count(), 0);
        assert_eq!(g.reference_attribute_count(), 1);
    }

    #[test]
    fn value_based_edges_link_equal_contents() {
        let c = mondial_like();
        let config = GraphConfig::with_value_keys(vec![ValueKeySpec::new(
            "/country/name",
            "/country/economy/import_partners/item/trade_country",
        )]);
        let g = DataGraph::build(&c, &config);
        let value_edges: Vec<Edge> =
            g.edges().into_iter().filter(|e| e.kind == EdgeKind::ValueBased).collect();
        // The US import partner "China" links to the China country's name.
        assert_eq!(value_edges.len(), 1);
        let contents: Vec<String> =
            vec![c.content(value_edges[0].from).unwrap(), c.content(value_edges[0].to).unwrap()];
        assert!(contents.iter().all(|s| s == "China"));
    }

    #[test]
    fn value_spec_with_unknown_path_is_ignored() {
        let c = mondial_like();
        let config =
            GraphConfig::with_value_keys(vec![ValueKeySpec::new("/nowhere", "/country/name")]);
        let g = DataGraph::build(&c, &config);
        assert!(g.edges().iter().all(|e| e.kind != EdgeKind::ValueBased));
    }

    #[test]
    fn neighbors_combine_tree_and_cross_edges() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        // The US country element (doc 1, root node 0): parent none, children
        // (id attr, name, economy), plus 1 IdRef edge from the sea bordering.
        let us_root = NodeId::new(seda_xmlstore::DocId(1), 0);
        let neighbors = g.neighbors(us_root);
        let tree: usize = neighbors.iter().filter(|(_, k)| *k == EdgeKind::ParentChild).count();
        let cross: usize = neighbors.iter().filter(|(_, k)| *k != EdgeKind::ParentChild).count();
        assert_eq!(tree, 3);
        assert_eq!(cross, 2, "bordering IdRef + XLink from China");
    }

    #[test]
    fn dense_indices_round_trip() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        assert_eq!(g.node_count(), c.total_nodes());
        for doc in c.documents() {
            for id in doc.node_ids() {
                let dense = g.dense(id).expect("every collection node has a dense index");
                assert_eq!(g.node_id(dense), id);
            }
        }
        // Out-of-range lookups are rejected rather than aliased.
        assert!(g.dense(NodeId::new(DocId(99), 0)).is_none());
        let last_doc = c.documents().last().unwrap();
        assert!(g.dense(NodeId::new(last_doc.id, last_doc.len() as u32)).is_none());
    }

    #[test]
    fn merged_shards_equal_sequential_build() {
        let c = mondial_like();
        let config = GraphConfig::with_value_keys(vec![ValueKeySpec::new(
            "/country/name",
            "/country/economy/import_partners/item/trade_country",
        )]);
        let sequential = DataGraph::build(&c, &config);
        let mut shards: Vec<GraphShard> =
            c.documents().map(|doc| DataGraph::build_shard(&c, doc.id, &config)).collect();
        shards.reverse(); // merge must not depend on shard order
        let merged = DataGraph::merge(&c, shards);
        assert_eq!(merged, sequential);
        assert_eq!(merged.cross_edge_count(), sequential.cross_edge_count());
    }

    #[test]
    fn shards_record_unresolved_references() {
        let c =
            parse_collection(vec![("a.xml", r#"<root><child thing_idref="elsewhere"/></root>"#)])
                .unwrap();
        let doc = c.documents().next().unwrap().id;
        let shard = DataGraph::build_shard(&c, doc, &GraphConfig::default());
        assert_eq!(shard.reference_attribute_count(), 1);
        assert_eq!(shard.id_entry_count(), 0);
        // The dangling reference survives to the merge but resolves to nothing.
        let merged = DataGraph::merge(&c, vec![shard]);
        assert_eq!(merged.cross_edge_count(), 0);
        assert_eq!(merged.reference_attribute_count(), 1);
    }

    #[test]
    fn merge_resolves_references_across_shards() {
        let c = mondial_like();
        let shards: Vec<GraphShard> = c
            .documents()
            .map(|doc| DataGraph::build_shard(&c, doc.id, &GraphConfig::default()))
            .collect();
        // sea.xml references cty-us / cty-ph, which live in other shards.
        let merged = DataGraph::merge(&c, shards);
        assert_eq!(merged.cross_edge_count(), 3);
    }

    #[test]
    fn merge_of_no_shards_is_empty() {
        let merged = DataGraph::merge(&Collection::new(), Vec::new());
        assert_eq!(merged.cross_edge_count(), 0);
        assert!(merged.edges().is_empty());
        assert_eq!(merged.node_count(), 0);
        assert_eq!(merged.doc_component_count(), 0);
    }

    #[test]
    fn edge_listing_reports_each_edge_once() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        let edges = g.edges();
        assert_eq!(edges.len(), g.cross_edge_count());
        for e in &edges {
            assert!(e.from < e.to);
        }
    }

    #[test]
    fn doc_components_follow_cross_edges() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        // sea + us + ph + china are all connected (bordering idrefs + xlink):
        // one component spanning all four documents.
        assert_eq!(g.doc_component_count(), 1);
        let first = g.doc_component(DocId(0));
        for doc in c.documents() {
            assert_eq!(g.doc_component(doc.id), first);
        }
        assert_eq!(g.doc_component(DocId(99)), u32::MAX);
    }

    #[test]
    fn doc_components_separate_disconnected_documents() {
        let c = parse_collection(vec![
            ("a.xml", r#"<country id="c1"><name>A</name></country>"#),
            ("b.xml", r#"<sea id="s1"><bordering country_idref="c1"/></sea>"#),
            ("island.xml", r#"<island><name>Lonely</name></island>"#),
        ])
        .unwrap();
        let g = DataGraph::build(&c, &GraphConfig::default());
        assert_eq!(g.doc_component_count(), 2);
        assert!(g.same_component(NodeId::new(DocId(0), 0), NodeId::new(DocId(1), 0)));
        assert!(!g.same_component(NodeId::new(DocId(0), 0), NodeId::new(DocId(2), 0)));
    }

    #[test]
    fn doc_components_match_reference_union_find() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        // Reference implementation: repeated closure over the edge list.
        let mut component: Vec<usize> = (0..c.len()).collect();
        let edges = g.edges();
        loop {
            let mut changed = false;
            for e in &edges {
                let (a, b) = (e.from.doc.index(), e.to.doc.index());
                let min = component[a].min(component[b]);
                if component[a] != min || component[b] != min {
                    component[a] = min;
                    component[b] = min;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (a, doc_a) in c.documents().enumerate() {
            for (b, doc_b) in c.documents().enumerate() {
                assert_eq!(
                    component[a] == component[b],
                    g.doc_component(doc_a.id) == g.doc_component(doc_b.id),
                    "docs {a} and {b} disagree with the reference partition"
                );
            }
        }
    }

    #[test]
    fn components_are_built_once_per_merge() {
        let before = doc_component_builds_on_this_thread();
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        assert_eq!(doc_component_builds_on_this_thread(), before + 1);
        // Reading components any number of times never recomputes them.
        for _ in 0..100 {
            let _ = g.doc_component(DocId(0));
            let _ = g.same_component(NodeId::new(DocId(0), 0), NodeId::new(DocId(1), 0));
        }
        assert_eq!(doc_component_builds_on_this_thread(), before + 1);
    }
}
