//! The SEDA data graph (Definition 2).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, DocId, NodeId, NodeKind};

use crate::config::GraphConfig;

/// Kind of an edge in the data graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Parent/child relationship within a document (includes attributes).
    ParentChild,
    /// IDREF attribute referencing an ID attribute.
    IdRef,
    /// XLink/XPointer reference.
    XLink,
    /// Value-based (primary-key / foreign-key) relationship.
    ValueBased,
}

/// A directed cross-document or intra-document non-tree edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Relationship kind.
    pub kind: EdgeKind,
}

/// The data graph: parent/child edges are implicit in the documents; IDREF,
/// XLink and value-based edges are materialised here (in both directions, so
/// traversal can treat the graph as undirected, as the paper's connectedness
/// definition does).
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataGraph {
    /// Non-tree adjacency, symmetric: every edge is stored under both
    /// endpoints.
    cross_edges: HashMap<NodeId, Vec<(NodeId, EdgeKind)>>,
    edge_count: usize,
    id_nodes: usize,
    idref_nodes: usize,
    value_pairs: usize,
}

/// Per-document raw material for the data graph, produced by
/// [`DataGraph::build_shard`] and resolved across documents by
/// [`DataGraph::merge`].
///
/// The shard phase records everything that can be discovered from a single
/// document — ID definitions, IDREF/XLink references, and the contents of
/// value-key endpoints — without resolving anything.  Resolution (ID lookup
/// and value joins) is inherently cross-document and happens once at merge
/// time over the combined symbol maps.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphShard {
    doc: Option<DocId>,
    /// `(id value, owning element)` pairs, in document order.
    id_entries: Vec<(String, NodeId)>,
    /// `(referencing element, lookup key, kind)` triples, in document order.
    references: Vec<(NodeId, String, EdgeKind)>,
    /// Referencing attribute instances seen (including unresolvable ones).
    reference_attrs: usize,
    /// Per value-key spec: `(content, node)` pairs on the primary side.
    primary_values: Vec<Vec<(String, NodeId)>>,
    /// Per value-key spec: `(content, node)` pairs on the foreign side.
    foreign_values: Vec<Vec<(String, NodeId)>>,
}

impl GraphShard {
    /// The document this shard was built from.
    pub fn doc(&self) -> Option<DocId> {
        self.doc
    }

    /// Number of ID attribute instances recorded in this shard.
    pub fn id_entry_count(&self) -> usize {
        self.id_entries.len()
    }

    /// Number of IDREF/XLink attribute instances seen in this shard.
    pub fn reference_attribute_count(&self) -> usize {
        self.reference_attrs
    }
}

impl DataGraph {
    /// Builds the data graph over a collection.
    ///
    /// * IDREF/XLink edges connect the *element owning* the referencing
    ///   attribute to the *element owning* the referenced ID attribute.
    /// * Value-based edges connect the nodes named by the configured
    ///   [`crate::config::ValueKeySpec`]s whenever their contents are equal.
    ///
    /// This is the sequential reference path; it is equivalent to building
    /// one shard per document with [`DataGraph::build_shard`] and resolving
    /// them with [`DataGraph::merge`].
    pub fn build(collection: &Collection, config: &GraphConfig) -> Self {
        let shards = collection
            .documents()
            .map(|doc| Self::build_shard(collection, doc.id, config))
            .collect();
        Self::merge(shards)
    }

    /// Scans a single document for graph raw material (the per-shard phase):
    /// ID definitions, IDREF/XLink references and value-key endpoint
    /// contents.  No cross-document resolution happens here.
    pub fn build_shard(collection: &Collection, doc: DocId, config: &GraphConfig) -> GraphShard {
        let mut shard = GraphShard { doc: Some(doc), ..GraphShard::default() };
        let Ok(document) = collection.document(doc) else { return shard };

        for (_, node) in document.iter() {
            if node.kind != NodeKind::Attribute {
                continue;
            }
            let name = collection.symbols().resolve(node.name);
            if config.is_id_attribute(name) {
                if let (Some(value), Some(parent)) = (node.text.as_deref(), node.parent) {
                    shard.id_entries.push((value.trim().to_string(), NodeId::new(doc, parent)));
                }
            }
            let kind = if config.is_idref_attribute(name) {
                Some(EdgeKind::IdRef)
            } else if config.is_xlink_attribute(name) {
                Some(EdgeKind::XLink)
            } else {
                None
            };
            let Some(kind) = kind else { continue };
            shard.reference_attrs += 1;
            let Some(parent) = node.parent else { continue };
            let Some(value) = node.text.as_deref() else { continue };
            // XLink values may carry a fragment (`doc.xml#id`); use the
            // fragment if present.
            let key = value.rsplit('#').next().unwrap_or(value).trim();
            shard.references.push((NodeId::new(doc, parent), key.to_string(), kind));
        }

        // Value-key endpoints of this document, per spec.
        shard.primary_values = Vec::with_capacity(config.value_keys.len());
        shard.foreign_values = Vec::with_capacity(config.value_keys.len());
        for spec in &config.value_keys {
            let mut primary = Vec::new();
            let mut foreign = Vec::new();
            if let Some(path) = collection.paths().get_str(collection.symbols(), &spec.primary_path)
            {
                for ordinal in document.nodes_with_path(path) {
                    primary.push((document.content(ordinal), NodeId::new(doc, ordinal)));
                }
            }
            if let Some(path) = collection.paths().get_str(collection.symbols(), &spec.foreign_path)
            {
                for ordinal in document.nodes_with_path(path) {
                    foreign.push((document.content(ordinal), NodeId::new(doc, ordinal)));
                }
            }
            shard.primary_values.push(primary);
            shard.foreign_values.push(foreign);
        }
        shard
    }

    /// Resolves per-document shards into the full data graph (the merge phase
    /// of the shard → merge build lifecycle): ID/IDREF and XLink references
    /// are looked up in the combined ID map, and value-key joins run over the
    /// combined endpoint lists.
    ///
    /// Shards are processed in ascending document order regardless of input
    /// order, so the result is deterministic and identical to the sequential
    /// [`DataGraph::build`].
    pub fn merge(mut shards: Vec<GraphShard>) -> Self {
        shards.sort_by_key(|s| s.doc);
        let mut graph = DataGraph::default();

        // Phase 1: combined ID map.  Later documents overwrite earlier ones
        // for a duplicated ID value, matching the sequential build.
        let mut id_map: HashMap<String, NodeId> = HashMap::new();
        for shard in &shards {
            for (value, owner) in &shard.id_entries {
                id_map.insert(value.clone(), *owner);
                graph.id_nodes += 1;
            }
        }

        // Phase 2: resolve IDREF / XLink references.
        for shard in &shards {
            graph.idref_nodes += shard.reference_attrs;
            for (source, key, kind) in &shard.references {
                if let Some(&target) = id_map.get(key.as_str()) {
                    graph.add_edge(*source, target, *kind);
                }
            }
        }

        // Phase 3: value-based joins over the combined endpoint lists.
        let spec_count = shards.iter().map(|s| s.primary_values.len()).max().unwrap_or(0);
        for spec in 0..spec_count {
            let mut primary_values: HashMap<&str, Vec<NodeId>> = HashMap::new();
            for shard in &shards {
                for (content, node) in shard.primary_values.get(spec).into_iter().flatten() {
                    primary_values.entry(content.as_str()).or_default().push(*node);
                }
            }
            for shard in &shards {
                for (content, node) in shard.foreign_values.get(spec).into_iter().flatten() {
                    if let Some(targets) = primary_values.get(content.as_str()) {
                        for &target in targets {
                            if target != *node {
                                graph.add_edge(*node, target, EdgeKind::ValueBased);
                                graph.value_pairs += 1;
                            }
                        }
                    }
                }
            }
        }

        graph
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        self.cross_edges.entry(from).or_default().push((to, kind));
        self.cross_edges.entry(to).or_default().push((from, kind));
        self.edge_count += 1;
    }

    /// Number of distinct non-tree edges (each counted once).
    pub fn cross_edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of ID attribute instances seen.
    pub fn id_attribute_count(&self) -> usize {
        self.id_nodes
    }

    /// Number of IDREF/XLink attribute instances seen.
    pub fn reference_attribute_count(&self) -> usize {
        self.idref_nodes
    }

    /// Non-tree neighbours of a node.
    pub fn cross_neighbors(&self, node: NodeId) -> &[(NodeId, EdgeKind)] {
        self.cross_edges.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All neighbours of a node: parent, children (tree edges from the
    /// document), plus non-tree edges.
    pub fn neighbors(&self, collection: &Collection, node: NodeId) -> Vec<(NodeId, EdgeKind)> {
        let mut out = Vec::new();
        if let Ok(doc) = collection.document(node.doc) {
            if let Ok(n) = doc.node(node.node) {
                if let Some(parent) = n.parent {
                    out.push((NodeId::new(node.doc, parent), EdgeKind::ParentChild));
                }
                for &child in &n.children {
                    out.push((NodeId::new(node.doc, child), EdgeKind::ParentChild));
                }
            }
        }
        out.extend(self.cross_neighbors(node).iter().copied());
        out
    }

    /// All materialised non-tree edges, each reported once (from < to).
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for (&from, targets) in &self.cross_edges {
            for &(to, kind) in targets {
                if from < to {
                    out.push(Edge { from, to, kind });
                }
            }
        }
        out.sort_by_key(|e| (e.from, e.to));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ValueKeySpec;
    use seda_xmlstore::parse_collection;

    fn mondial_like() -> Collection {
        parse_collection(vec![
            (
                "sea.xml",
                r#"<sea id="sea-1"><name>Pacific Ocean</name>
                     <bordering country_idref="cty-us"/>
                     <bordering country_idref="cty-ph"/>
                   </sea>"#,
            ),
            (
                "us.xml",
                r#"<country id="cty-us"><name>United States</name>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                     </import_partners></economy>
                   </country>"#,
            ),
            ("ph.xml", r#"<country id="cty-ph"><name>Philippines</name></country>"#),
            (
                "china.xml",
                r#"<country id="cty-cn"><name>China</name>
                     <link href="cty-us"/>
                   </country>"#,
            ),
        ])
        .unwrap()
    }

    #[test]
    fn idref_edges_link_referencing_and_referenced_elements() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        // Two bordering -> country edges plus one XLink edge.
        assert_eq!(g.cross_edge_count(), 3);
        let kinds: Vec<EdgeKind> = g.edges().iter().map(|e| e.kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == EdgeKind::IdRef).count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == EdgeKind::XLink).count(), 1);
    }

    #[test]
    fn idref_edges_are_symmetric_for_traversal() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        for edge in g.edges() {
            assert!(g.cross_neighbors(edge.from).iter().any(|(n, _)| *n == edge.to));
            assert!(g.cross_neighbors(edge.to).iter().any(|(n, _)| *n == edge.from));
        }
    }

    #[test]
    fn dangling_references_produce_no_edges() {
        let c = parse_collection(vec![(
            "a.xml",
            r#"<root><child thing_idref="does-not-exist"/></root>"#,
        )])
        .unwrap();
        let g = DataGraph::build(&c, &GraphConfig::default());
        assert_eq!(g.cross_edge_count(), 0);
        assert_eq!(g.reference_attribute_count(), 1);
    }

    #[test]
    fn value_based_edges_link_equal_contents() {
        let c = mondial_like();
        let config = GraphConfig::with_value_keys(vec![ValueKeySpec::new(
            "/country/name",
            "/country/economy/import_partners/item/trade_country",
        )]);
        let g = DataGraph::build(&c, &config);
        let value_edges: Vec<Edge> =
            g.edges().into_iter().filter(|e| e.kind == EdgeKind::ValueBased).collect();
        // The US import partner "China" links to the China country's name.
        assert_eq!(value_edges.len(), 1);
        let contents: Vec<String> =
            vec![c.content(value_edges[0].from).unwrap(), c.content(value_edges[0].to).unwrap()];
        assert!(contents.iter().all(|s| s == "China"));
    }

    #[test]
    fn value_spec_with_unknown_path_is_ignored() {
        let c = mondial_like();
        let config =
            GraphConfig::with_value_keys(vec![ValueKeySpec::new("/nowhere", "/country/name")]);
        let g = DataGraph::build(&c, &config);
        assert!(g.edges().iter().all(|e| e.kind != EdgeKind::ValueBased));
    }

    #[test]
    fn neighbors_combine_tree_and_cross_edges() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        // The US country element (doc 1, root node 0): parent none, children
        // (id attr, name, economy), plus 1 IdRef edge from the sea bordering.
        let us_root = NodeId::new(seda_xmlstore::DocId(1), 0);
        let neighbors = g.neighbors(&c, us_root);
        let tree: usize = neighbors.iter().filter(|(_, k)| *k == EdgeKind::ParentChild).count();
        let cross: usize = neighbors.iter().filter(|(_, k)| *k != EdgeKind::ParentChild).count();
        assert_eq!(tree, 3);
        assert_eq!(cross, 2, "bordering IdRef + XLink from China");
    }

    #[test]
    fn merged_shards_equal_sequential_build() {
        let c = mondial_like();
        let config = GraphConfig::with_value_keys(vec![ValueKeySpec::new(
            "/country/name",
            "/country/economy/import_partners/item/trade_country",
        )]);
        let sequential = DataGraph::build(&c, &config);
        let mut shards: Vec<GraphShard> =
            c.documents().map(|doc| DataGraph::build_shard(&c, doc.id, &config)).collect();
        shards.reverse(); // merge must not depend on shard order
        let merged = DataGraph::merge(shards);
        assert_eq!(merged, sequential);
        assert_eq!(merged.cross_edge_count(), sequential.cross_edge_count());
    }

    #[test]
    fn shards_record_unresolved_references() {
        let c =
            parse_collection(vec![("a.xml", r#"<root><child thing_idref="elsewhere"/></root>"#)])
                .unwrap();
        let doc = c.documents().next().unwrap().id;
        let shard = DataGraph::build_shard(&c, doc, &GraphConfig::default());
        assert_eq!(shard.reference_attribute_count(), 1);
        assert_eq!(shard.id_entry_count(), 0);
        // The dangling reference survives to the merge but resolves to nothing.
        let merged = DataGraph::merge(vec![shard]);
        assert_eq!(merged.cross_edge_count(), 0);
        assert_eq!(merged.reference_attribute_count(), 1);
    }

    #[test]
    fn merge_resolves_references_across_shards() {
        let c = mondial_like();
        let shards: Vec<GraphShard> = c
            .documents()
            .map(|doc| DataGraph::build_shard(&c, doc.id, &GraphConfig::default()))
            .collect();
        // sea.xml references cty-us / cty-ph, which live in other shards.
        let merged = DataGraph::merge(shards);
        assert_eq!(merged.cross_edge_count(), 3);
    }

    #[test]
    fn merge_of_no_shards_is_empty() {
        let merged = DataGraph::merge(Vec::new());
        assert_eq!(merged.cross_edge_count(), 0);
        assert!(merged.edges().is_empty());
    }

    #[test]
    fn edge_listing_reports_each_edge_once() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        let edges = g.edges();
        assert_eq!(edges.len(), g.cross_edge_count());
        for e in &edges {
            assert!(e.from < e.to);
        }
    }
}
