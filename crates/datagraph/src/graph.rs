//! The SEDA data graph (Definition 2).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, NodeId, NodeKind};

use crate::config::GraphConfig;

/// Kind of an edge in the data graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Parent/child relationship within a document (includes attributes).
    ParentChild,
    /// IDREF attribute referencing an ID attribute.
    IdRef,
    /// XLink/XPointer reference.
    XLink,
    /// Value-based (primary-key / foreign-key) relationship.
    ValueBased,
}

/// A directed cross-document or intra-document non-tree edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Relationship kind.
    pub kind: EdgeKind,
}

/// The data graph: parent/child edges are implicit in the documents; IDREF,
/// XLink and value-based edges are materialised here (in both directions, so
/// traversal can treat the graph as undirected, as the paper's connectedness
/// definition does).
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct DataGraph {
    /// Non-tree adjacency, symmetric: every edge is stored under both
    /// endpoints.
    cross_edges: HashMap<NodeId, Vec<(NodeId, EdgeKind)>>,
    edge_count: usize,
    id_nodes: usize,
    idref_nodes: usize,
    value_pairs: usize,
}

impl DataGraph {
    /// Builds the data graph over a collection.
    ///
    /// * IDREF/XLink edges connect the *element owning* the referencing
    ///   attribute to the *element owning* the referenced ID attribute.
    /// * Value-based edges connect the nodes named by the configured
    ///   [`crate::config::ValueKeySpec`]s whenever their contents are equal.
    pub fn build(collection: &Collection, config: &GraphConfig) -> Self {
        let mut graph = DataGraph::default();

        // Pass 1: collect ID values -> owning element.
        let mut id_map: HashMap<String, NodeId> = HashMap::new();
        for doc in collection.documents() {
            for (_ordinal, node) in doc.iter() {
                if node.kind != NodeKind::Attribute {
                    continue;
                }
                let name = collection.symbols().resolve(node.name);
                if config.is_id_attribute(name) {
                    if let (Some(value), Some(parent)) = (node.text.as_deref(), node.parent) {
                        id_map.insert(value.trim().to_string(), NodeId::new(doc.id, parent));
                        graph.id_nodes += 1;
                    }
                }
            }
        }

        // Pass 2: IDREF / XLink edges.
        for doc in collection.documents() {
            for (_, node) in doc.iter() {
                if node.kind != NodeKind::Attribute {
                    continue;
                }
                let name = collection.symbols().resolve(node.name);
                let kind = if config.is_idref_attribute(name) {
                    Some(EdgeKind::IdRef)
                } else if config.is_xlink_attribute(name) {
                    Some(EdgeKind::XLink)
                } else {
                    None
                };
                let Some(kind) = kind else { continue };
                graph.idref_nodes += 1;
                let Some(parent) = node.parent else { continue };
                let Some(value) = node.text.as_deref() else { continue };
                // XLink values may carry a fragment (`doc.xml#id`); use the
                // fragment if present.
                let key = value.rsplit('#').next().unwrap_or(value).trim();
                if let Some(&target) = id_map.get(key) {
                    graph.add_edge(NodeId::new(doc.id, parent), target, kind);
                }
            }
        }

        // Pass 3: value-based edges.
        for spec in &config.value_keys {
            let Some(primary) = collection.paths().get_str(collection.symbols(), &spec.primary_path)
            else {
                continue;
            };
            let Some(foreign) = collection.paths().get_str(collection.symbols(), &spec.foreign_path)
            else {
                continue;
            };
            let mut primary_values: HashMap<String, Vec<NodeId>> = HashMap::new();
            for node in collection.nodes_with_path(primary) {
                if let Ok(content) = collection.content(node) {
                    primary_values.entry(content).or_default().push(node);
                }
            }
            for node in collection.nodes_with_path(foreign) {
                let Ok(content) = collection.content(node) else { continue };
                if let Some(targets) = primary_values.get(&content) {
                    for &target in targets {
                        if target != node {
                            graph.add_edge(node, target, EdgeKind::ValueBased);
                            graph.value_pairs += 1;
                        }
                    }
                }
            }
        }

        graph
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        self.cross_edges.entry(from).or_default().push((to, kind));
        self.cross_edges.entry(to).or_default().push((from, kind));
        self.edge_count += 1;
    }

    /// Number of distinct non-tree edges (each counted once).
    pub fn cross_edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of ID attribute instances seen.
    pub fn id_attribute_count(&self) -> usize {
        self.id_nodes
    }

    /// Number of IDREF/XLink attribute instances seen.
    pub fn reference_attribute_count(&self) -> usize {
        self.idref_nodes
    }

    /// Non-tree neighbours of a node.
    pub fn cross_neighbors(&self, node: NodeId) -> &[(NodeId, EdgeKind)] {
        self.cross_edges.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All neighbours of a node: parent, children (tree edges from the
    /// document), plus non-tree edges.
    pub fn neighbors(&self, collection: &Collection, node: NodeId) -> Vec<(NodeId, EdgeKind)> {
        let mut out = Vec::new();
        if let Ok(doc) = collection.document(node.doc) {
            if let Ok(n) = doc.node(node.node) {
                if let Some(parent) = n.parent {
                    out.push((NodeId::new(node.doc, parent), EdgeKind::ParentChild));
                }
                for &child in &n.children {
                    out.push((NodeId::new(node.doc, child), EdgeKind::ParentChild));
                }
            }
        }
        out.extend(self.cross_neighbors(node).iter().copied());
        out
    }

    /// All materialised non-tree edges, each reported once (from < to).
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for (&from, targets) in &self.cross_edges {
            for &(to, kind) in targets {
                if from < to {
                    out.push(Edge { from, to, kind });
                }
            }
        }
        out.sort_by_key(|e| (e.from, e.to));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ValueKeySpec;
    use seda_xmlstore::parse_collection;

    fn mondial_like() -> Collection {
        parse_collection(vec![
            (
                "sea.xml",
                r#"<sea id="sea-1"><name>Pacific Ocean</name>
                     <bordering country_idref="cty-us"/>
                     <bordering country_idref="cty-ph"/>
                   </sea>"#,
            ),
            (
                "us.xml",
                r#"<country id="cty-us"><name>United States</name>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                     </import_partners></economy>
                   </country>"#,
            ),
            (
                "ph.xml",
                r#"<country id="cty-ph"><name>Philippines</name></country>"#,
            ),
            (
                "china.xml",
                r#"<country id="cty-cn"><name>China</name>
                     <link href="cty-us"/>
                   </country>"#,
            ),
        ])
        .unwrap()
    }

    #[test]
    fn idref_edges_link_referencing_and_referenced_elements() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        // Two bordering -> country edges plus one XLink edge.
        assert_eq!(g.cross_edge_count(), 3);
        let kinds: Vec<EdgeKind> = g.edges().iter().map(|e| e.kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == EdgeKind::IdRef).count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == EdgeKind::XLink).count(), 1);
    }

    #[test]
    fn idref_edges_are_symmetric_for_traversal() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        for edge in g.edges() {
            assert!(g.cross_neighbors(edge.from).iter().any(|(n, _)| *n == edge.to));
            assert!(g.cross_neighbors(edge.to).iter().any(|(n, _)| *n == edge.from));
        }
    }

    #[test]
    fn dangling_references_produce_no_edges() {
        let c = parse_collection(vec![(
            "a.xml",
            r#"<root><child thing_idref="does-not-exist"/></root>"#,
        )])
        .unwrap();
        let g = DataGraph::build(&c, &GraphConfig::default());
        assert_eq!(g.cross_edge_count(), 0);
        assert_eq!(g.reference_attribute_count(), 1);
    }

    #[test]
    fn value_based_edges_link_equal_contents() {
        let c = mondial_like();
        let config = GraphConfig::with_value_keys(vec![ValueKeySpec::new(
            "/country/name",
            "/country/economy/import_partners/item/trade_country",
        )]);
        let g = DataGraph::build(&c, &config);
        let value_edges: Vec<Edge> =
            g.edges().into_iter().filter(|e| e.kind == EdgeKind::ValueBased).collect();
        // The US import partner "China" links to the China country's name.
        assert_eq!(value_edges.len(), 1);
        let contents: Vec<String> = vec![
            c.content(value_edges[0].from).unwrap(),
            c.content(value_edges[0].to).unwrap(),
        ];
        assert!(contents.iter().all(|s| s == "China"));
    }

    #[test]
    fn value_spec_with_unknown_path_is_ignored() {
        let c = mondial_like();
        let config =
            GraphConfig::with_value_keys(vec![ValueKeySpec::new("/nowhere", "/country/name")]);
        let g = DataGraph::build(&c, &config);
        assert!(g.edges().iter().all(|e| e.kind != EdgeKind::ValueBased));
    }

    #[test]
    fn neighbors_combine_tree_and_cross_edges() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        // The US country element (doc 1, root node 0): parent none, children
        // (id attr, name, economy), plus 1 IdRef edge from the sea bordering.
        let us_root = NodeId::new(seda_xmlstore::DocId(1), 0);
        let neighbors = g.neighbors(&c, us_root);
        let tree: usize =
            neighbors.iter().filter(|(_, k)| *k == EdgeKind::ParentChild).count();
        let cross: usize =
            neighbors.iter().filter(|(_, k)| *k != EdgeKind::ParentChild).count();
        assert_eq!(tree, 3);
        assert_eq!(cross, 2, "bordering IdRef + XLink from China");
    }

    #[test]
    fn edge_listing_reports_each_edge_once() {
        let c = mondial_like();
        let g = DataGraph::build(&c, &GraphConfig::default());
        let edges = g.edges();
        assert_eq!(edges.len(), g.cross_edge_count());
        for e in &edges {
            assert!(e.from < e.to);
        }
    }
}
