//! Configuration of data-graph construction.
//!
//! Definition 2 of the paper lists four relationships between data nodes:
//! parent/child, IDREF, XLink/XPointer, and value-based (primary-key /
//! foreign-key) relationships.  Parent/child edges come from the documents
//! themselves; the other three need to be *discovered*, which requires telling
//! the builder which attributes carry IDs, which carry references, and which
//! path pairs are related by value ("we assume that instances of the last type
//! of relationship are provided as input into the system").

use serde::{Deserialize, Serialize};

/// A value-based relationship specification: nodes whose context is
/// `foreign_path` are linked to nodes whose context is `primary_path` when
/// their contents are equal (primary-key / foreign-key semantics).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueKeySpec {
    /// Context (root-to-leaf path, `/a/b/c` notation) of the primary-key side.
    pub primary_path: String,
    /// Context of the foreign-key side.
    pub foreign_path: String,
}

impl ValueKeySpec {
    /// Convenience constructor.
    pub fn new(primary_path: impl Into<String>, foreign_path: impl Into<String>) -> Self {
        ValueKeySpec { primary_path: primary_path.into(), foreign_path: foreign_path.into() }
    }
}

/// Configuration for [`crate::DataGraph::build`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Attribute names treated as element identifiers (ID attributes).
    pub id_attributes: Vec<String>,
    /// Attribute names treated as IDREF references.  In addition to exact
    /// names, any attribute whose name ends in `_idref` is treated as an
    /// IDREF (the convention used by the Mondial-like generator).
    pub idref_attributes: Vec<String>,
    /// Attribute names treated as XLink/XPointer references (`xlink:href`,
    /// `href`).  Their values are resolved against document URIs and ID
    /// values, like IDREFs, but the resulting edges are tagged
    /// [`crate::EdgeKind::XLink`].
    pub xlink_attributes: Vec<String>,
    /// Value-based relationships to materialise.
    pub value_keys: Vec<ValueKeySpec>,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            id_attributes: vec!["id".to_string(), "ID".to_string()],
            idref_attributes: vec!["idref".to_string(), "IDREF".to_string(), "ref".to_string()],
            xlink_attributes: vec!["xlink:href".to_string(), "href".to_string()],
            value_keys: Vec::new(),
        }
    }
}

impl GraphConfig {
    /// Default configuration plus the given value-based key specs.
    pub fn with_value_keys(value_keys: Vec<ValueKeySpec>) -> Self {
        GraphConfig { value_keys, ..GraphConfig::default() }
    }

    /// True when the attribute name denotes an ID attribute.
    pub fn is_id_attribute(&self, name: &str) -> bool {
        self.id_attributes.iter().any(|a| a == name)
    }

    /// True when the attribute name denotes an IDREF attribute.
    pub fn is_idref_attribute(&self, name: &str) -> bool {
        name.ends_with("_idref") || self.idref_attributes.iter().any(|a| a == name)
    }

    /// True when the attribute name denotes an XLink/XPointer reference.
    pub fn is_xlink_attribute(&self, name: &str) -> bool {
        self.xlink_attributes.iter().any(|a| a == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_recognises_common_attribute_names() {
        let c = GraphConfig::default();
        assert!(c.is_id_attribute("id"));
        assert!(!c.is_id_attribute("name"));
        assert!(c.is_idref_attribute("idref"));
        assert!(c.is_idref_attribute("country_idref"), "suffix convention");
        assert!(!c.is_idref_attribute("country"));
        assert!(c.is_xlink_attribute("href"));
    }

    #[test]
    fn value_key_specs_are_plain_data() {
        let spec = ValueKeySpec::new("/country/name", "/sea/bordering_country");
        assert_eq!(spec.primary_path, "/country/name");
        let config = GraphConfig::with_value_keys(vec![spec.clone()]);
        assert_eq!(config.value_keys, vec![spec]);
        assert!(config.is_id_attribute("id"), "defaults preserved");
    }
}
