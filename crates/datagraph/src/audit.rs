//! Structural invariant auditing — the `seda-audit` layer for the data
//! graph and its connectivity oracle.
//!
//! # Invariant catalog (substrate `datagraph`)
//!
//! | class | invariant |
//! |---|---|
//! | `csr-offsets` | every CSR offset array is monotone, starts at 0, ends at its arena length, targets in-bounds |
//! | `cross-symmetry` | every cross edge is stored under both endpoints with the same kind |
//! | `component-partition` | `doc_component` equals the dense union-find closure of the cross edges |
//! | `labels-sorted` | per-node label keys strictly ascending (sorted and deduped), schemes cover every document |
//! | `labels-radius` | hub-scheme label distances never exceed the advertised radius |
//! | `labels-sound` | hub pruning kept the 2-hop cover sound: every adjacency edge answers distance 1 |
//! | `scratch-epoch` | traversal scratch arrays stay parallel and no stamp exceeds the current epoch |
//!
//! The violation type lives in [`seda_xmlstore::audit`]; see there for the
//! catalog conventions.

use std::collections::HashMap;

use seda_xmlstore::audit::{finish, AuditResult, InvariantViolation};
use seda_xmlstore::NodeId;

use crate::connectivity::LabelScheme;
use crate::graph::{DataGraph, EdgeKind};
use crate::traversal::TraversalScratch;

const SUBSTRATE: &str = "datagraph";

fn check_offsets(
    violations: &mut Vec<InvariantViolation>,
    name: &str,
    offsets: &[u32],
    expected_len: usize,
    arena_len: usize,
) -> bool {
    if offsets.len() != expected_len {
        violations.push(InvariantViolation::new(
            SUBSTRATE,
            "csr-offsets",
            format!("{name}: {} offsets, expected {expected_len}", offsets.len()),
        ));
        return false;
    }
    if offsets.first() != Some(&0) || offsets.last().map(|&o| o as usize) != Some(arena_len) {
        violations.push(InvariantViolation::new(
            SUBSTRATE,
            "csr-offsets",
            format!(
                "{name}: offsets span {:?}..{:?} over an arena of {arena_len}",
                offsets.first(),
                offsets.last()
            ),
        ));
        return false;
    }
    for (i, pair) in offsets.windows(2).enumerate() {
        if pair[0] > pair[1] {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "csr-offsets",
                format!("{name}: offset {i} decreases: {} > {}", pair[0], pair[1]),
            ));
            return false;
        }
    }
    true
}

impl DataGraph {
    /// Verifies the frozen graph: CSR well-formedness of both adjacency
    /// arenas, cross-edge symmetry, the document component partition, and
    /// the connectivity oracle's label invariants.
    pub fn verify(&self) -> AuditResult {
        let mut violations = Vec::new();
        if self.doc_offsets.is_empty() {
            // A default-constructed (never merged) graph holds no arenas;
            // vacuously well-formed.
            return finish(violations);
        }
        let node_count = self.node_count();
        let docs = self.doc_offsets.len() - 1;

        let doc_ok =
            check_offsets(&mut violations, "doc_offsets", &self.doc_offsets, docs + 1, node_count);
        let adj_ok = check_offsets(
            &mut violations,
            "adj_offsets",
            &self.adj_offsets,
            node_count + 1,
            self.adj_targets.len(),
        );
        let cross_ok = check_offsets(
            &mut violations,
            "cross_offsets",
            &self.cross_offsets,
            node_count + 1,
            self.cross_targets.len(),
        );
        if adj_ok {
            for (i, &(target, _)) in self.adj_targets.iter().enumerate() {
                if target as usize >= node_count {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "csr-offsets",
                        format!("adj target {i} = {target} beyond {node_count} nodes"),
                    ));
                }
            }
        }
        if cross_ok && doc_ok {
            if self.cross_targets.len() != self.edge_count * 2 {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "csr-offsets",
                    format!(
                        "{} cross targets for {} undirected edges",
                        self.cross_targets.len(),
                        self.edge_count
                    ),
                ));
            }
            self.verify_cross_symmetry(&mut violations);
            self.verify_components(&mut violations, docs);
        }
        self.verify_labels(&mut violations, node_count, docs, cross_ok && doc_ok && adj_ok);
        finish(violations)
    }

    fn cross_range(&self, dense: usize) -> &[(NodeId, EdgeKind)] {
        &self.cross_targets
            [self.cross_offsets[dense] as usize..self.cross_offsets[dense + 1] as usize]
    }

    fn verify_cross_symmetry(&self, violations: &mut Vec<InvariantViolation>) {
        for dense in 0..self.node_count() {
            let from = self.node_id(dense as u32);
            for &(to, kind) in self.cross_range(dense) {
                let Some(to_dense) = self.dense(to) else {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "cross-symmetry",
                        format!("cross edge {from:?} -> {to:?} targets a node outside the graph"),
                    ));
                    continue;
                };
                let mirrored = self
                    .cross_range(to_dense as usize)
                    .iter()
                    .any(|&(back, back_kind)| back == from && back_kind == kind);
                if !mirrored {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "cross-symmetry",
                        format!("cross edge {from:?} -> {to:?} ({kind:?}) has no mirror"),
                    ));
                }
            }
        }
    }

    /// Recomputes the union-find partition over the stored cross edges (the
    /// same dense, ascending-doc numbering the merge uses) and compares.
    fn verify_components(&self, violations: &mut Vec<InvariantViolation>, docs: usize) {
        if self.doc_component.len() != docs {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "component-partition",
                format!("{} component entries for {docs} documents", self.doc_component.len()),
            ));
            return;
        }
        let mut parent: Vec<u32> = (0..docs as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let grand = parent[parent[x as usize] as usize];
                parent[x as usize] = grand;
                x = grand;
            }
            x
        }
        for dense in 0..self.node_count() {
            let from = self.node_id(dense as u32);
            for &(to, _) in self.cross_range(dense) {
                if self.dense(to).is_none() {
                    continue; // reported by cross-symmetry
                }
                let a = find(&mut parent, from.doc.0);
                let b = find(&mut parent, to.doc.0);
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
        let mut ids: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        for doc in 0..docs as u32 {
            let root = find(&mut parent, doc);
            let id = *ids.entry(root).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            if self.doc_component[doc as usize] != id {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "component-partition",
                    format!(
                        "doc {doc}: stored component {} but the cross edges give {id}",
                        self.doc_component[doc as usize]
                    ),
                ));
            }
        }
    }

    fn verify_labels(
        &self,
        violations: &mut Vec<InvariantViolation>,
        node_count: usize,
        docs: usize,
        adjacency_trusted: bool,
    ) {
        let conn = &self.connectivity;
        if conn.schemes.len() != docs {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "labels-sorted",
                format!("{} label schemes for {docs} documents", conn.schemes.len()),
            ));
            return;
        }
        if !check_offsets(
            violations,
            "label offsets",
            &conn.offsets,
            node_count + 1,
            conn.hubs.len(),
        ) || conn.dists.len() != conn.hubs.len()
        {
            if conn.dists.len() != conn.hubs.len() {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "labels-sorted",
                    format!("{} distances for {} hubs", conn.dists.len(), conn.hubs.len()),
                ));
            }
            return;
        }
        for dense in 0..node_count {
            let lo = conn.offsets[dense] as usize;
            let hi = conn.offsets[dense + 1] as usize;
            let hubs = &conn.hubs[lo..hi];
            for (i, pair) in hubs.windows(2).enumerate() {
                if pair[0] >= pair[1] {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "labels-sorted",
                        format!(
                            "node {dense} label keys not strictly ascending at {i}: {} then {}",
                            pair[0], pair[1]
                        ),
                    ));
                }
            }
            let scheme = conn.scheme(self.node_id(dense as u32).doc);
            if scheme == LabelScheme::Hub {
                for &d in &conn.dists[lo..hi] {
                    if d > conn.radius {
                        violations.push(InvariantViolation::new(
                            SUBSTRATE,
                            "labels-radius",
                            format!(
                                "node {dense} carries distance {d} beyond radius {}",
                                conn.radius
                            ),
                        ));
                    }
                }
            }
        }
        if !adjacency_trusted {
            return; // soundness needs a well-formed adjacency to walk
        }
        // Hub-pruning soundness, checked empirically: for every adjacency
        // edge between distinct nodes the 2-hop cover must answer exactly 1.
        let mut probes = 0u64;
        for dense in 0..node_count as u32 {
            for &(target, _) in self.neighbors_dense(dense) {
                if target == dense {
                    continue;
                }
                let d = conn.label_distance(dense, target, &mut probes);
                if d != 1 {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "labels-sound",
                        format!("adjacent nodes {dense} and {target} answer distance {d}, not 1"),
                    ));
                }
            }
        }
    }

    /// Test-only corruption hook: overwrites one full-adjacency offset
    /// (breaks `csr-offsets`).
    #[doc(hidden)]
    pub fn corrupt_adj_offset(&mut self, index: usize, value: u32) {
        self.adj_offsets[index] = value;
    }

    /// Test-only corruption hook: redirects one cross-edge target (breaks
    /// `cross-symmetry`).
    #[doc(hidden)]
    pub fn corrupt_cross_target(&mut self, index: usize, target: NodeId) {
        self.cross_targets[index].0 = target;
    }

    /// Test-only corruption hook: overwrites one document's component id
    /// (breaks `component-partition`).
    #[doc(hidden)]
    pub fn corrupt_doc_component(&mut self, doc: usize, id: u32) {
        self.doc_component[doc] = id;
    }

    /// Test-only corruption hook: swaps two label keys of one node (breaks
    /// `labels-sorted` when the node has two or more labels).
    #[doc(hidden)]
    pub fn corrupt_swap_labels(&mut self, dense: u32) -> bool {
        let lo = self.connectivity.offsets[dense as usize] as usize;
        let hi = self.connectivity.offsets[dense as usize + 1] as usize;
        if hi - lo < 2 {
            return false;
        }
        self.connectivity.hubs.swap(lo, lo + 1);
        self.connectivity.dists.swap(lo, lo + 1);
        true
    }

    /// Test-only corruption hook: drops every label of one node, keeping the
    /// arenas structurally well-formed (breaks `labels-sound` for any node
    /// with a neighbour).
    #[doc(hidden)]
    pub fn corrupt_clear_labels(&mut self, dense: u32) {
        let lo = self.connectivity.offsets[dense as usize] as usize;
        let hi = self.connectivity.offsets[dense as usize + 1] as usize;
        let dropped = (hi - lo) as u32;
        self.connectivity.hubs.drain(lo..hi);
        self.connectivity.dists.drain(lo..hi);
        for offset in &mut self.connectivity.offsets[dense as usize + 1..] {
            *offset -= dropped;
        }
    }

    /// Test-only corruption hook: inflates one label distance (breaks
    /// `labels-radius` for hub-scheme nodes when set beyond the radius).
    #[doc(hidden)]
    pub fn corrupt_label_dist(&mut self, entry: usize, dist: u16) {
        self.connectivity.dists[entry] = dist;
    }

    /// The label entry range of one dense node (sizing input for the
    /// corruption suite).
    #[doc(hidden)]
    pub fn label_range(&self, dense: u32) -> (usize, usize) {
        (
            self.connectivity.offsets[dense as usize] as usize,
            self.connectivity.offsets[dense as usize + 1] as usize,
        )
    }
}

impl TraversalScratch {
    /// Verifies the epoch discipline of the reusable traversal state: the
    /// stamp/distance/predecessor arrays stay parallel, and no slot carries a
    /// stamp from the future (`stamp[i] > epoch` would make a stale mark read
    /// as visited in a later epoch — the `scratch-epoch` class).
    pub fn verify(&self) -> AuditResult {
        let mut violations = Vec::new();
        if self.stamp.len() != self.dist.len() || self.stamp.len() != self.pred.len() {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "scratch-epoch",
                format!(
                    "scratch arrays diverged: {} stamps, {} distances, {} predecessors",
                    self.stamp.len(),
                    self.dist.len(),
                    self.pred.len()
                ),
            ));
        }
        for (i, &stamp) in self.stamp.iter().enumerate() {
            if stamp > self.epoch {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "scratch-epoch",
                    format!("slot {i} stamped {stamp}, beyond the current epoch {}", self.epoch),
                ));
            }
        }
        finish(violations)
    }

    /// Test-only corruption hook: stamps one slot with a future epoch (breaks
    /// `scratch-epoch`).  Returns `false` when the scratch has never run a
    /// traversal and holds no slots.
    #[doc(hidden)]
    pub fn corrupt_stamp_future(&mut self) -> bool {
        match self.stamp.first_mut() {
            Some(slot) => {
                *slot = self.epoch + 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphConfig;
    use seda_xmlstore::parse_collection;

    fn linked_graph() -> DataGraph {
        let c = parse_collection(vec![
            (
                "sea.xml",
                r#"<sea id="sea-1"><name>Pacific</name>
                     <bordering country_idref="cty-us"/>
                   </sea>"#,
            ),
            ("us.xml", r#"<country id="cty-us"><name>United States</name></country>"#),
            ("island.xml", r#"<island><name>Lonely</name></island>"#),
        ])
        .unwrap();
        DataGraph::build(&c, &GraphConfig::default())
    }

    #[test]
    fn fresh_graph_passes() {
        assert_eq!(linked_graph().verify(), Ok(()));
        assert_eq!(DataGraph::default().verify(), Ok(()));
    }

    #[test]
    fn broken_adjacency_offset_fails_csr_offsets() {
        let mut g = linked_graph();
        g.corrupt_adj_offset(1, u32::MAX);
        let violations = g.verify().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "csr-offsets"), "{violations:?}");
    }

    #[test]
    fn redirected_cross_target_fails_symmetry() {
        let mut g = linked_graph();
        assert!(g.cross_edge_count() > 0);
        // Point one direction of the edge at the unrelated island document.
        g.corrupt_cross_target(0, NodeId::new(seda_xmlstore::DocId(2), 0));
        let violations = g.verify().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "cross-symmetry"), "{violations:?}");
    }

    #[test]
    fn rewritten_component_fails_partition() {
        let mut g = linked_graph();
        g.corrupt_doc_component(0, 99);
        let violations = g.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "component-partition"), "{violations:?}");
    }

    #[test]
    fn swapped_label_keys_fail_labels_sorted() {
        let mut g = linked_graph();
        let node_count = g.node_count() as u32;
        let swapped = (0..node_count).any(|dense| g.corrupt_swap_labels(dense));
        assert!(swapped, "some node must carry two or more labels");
        let violations = g.verify().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "labels-sorted"), "{violations:?}");
    }

    #[test]
    fn dropped_labels_fail_labels_sound() {
        let mut g = linked_graph();
        g.corrupt_clear_labels(0);
        let violations = g.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "labels-sound"), "{violations:?}");
    }

    #[test]
    fn traversal_scratch_epoch_discipline() {
        let g = linked_graph();
        let mut scratch = TraversalScratch::new();
        scratch.verify().unwrap();
        assert!(!scratch.corrupt_stamp_future(), "an unused scratch has no slots");
        // Run a BFS so the stamp arrays exist, then stamp the future.
        let a = g.node_id(0);
        let b = g.node_id(1);
        let _ = crate::traversal::bfs_shortest_distance_with(&g, &mut scratch, a, b, 4);
        scratch.verify().unwrap();
        assert!(scratch.corrupt_stamp_future());
        let violations = scratch.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "scratch-epoch"), "{violations:?}");
    }

    #[test]
    fn inflated_distance_fails_labels_radius() {
        let mut g = linked_graph();
        // Dense node 0 is the sea element — a hub-scheme document.
        let (lo, hi) = g.label_range(0);
        assert!(hi > lo);
        g.corrupt_label_dist(lo, u16::MAX);
        let violations = g.verify().unwrap_err();
        // The saturated distance also breaks edge soundness around node 0.
        assert!(violations.iter().any(|v| v.invariant == "labels-radius"), "{violations:?}");
    }
}
