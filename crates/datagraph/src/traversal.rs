//! Graph traversal: shortest paths, connectedness of result tuples, and the
//! compactness measure used by the top-k scoring function.
//!
//! Definition 4 of the paper requires a query result tuple `<n1 … nm>` to be
//! witnessed by a *connected* subgraph of the data graph, and Sec. 4 scores
//! tuples by "the compactness of the graph representing a tuple of nodes":
//! smaller connecting subgraphs are better.  Computing the minimal connecting
//! subtree (a Steiner tree) is NP-hard in general, so — like every practical
//! system — we approximate it with a minimum spanning tree over the pairwise
//! shortest-path distances of the tuple's nodes.

use std::collections::{HashMap, VecDeque};

use seda_xmlstore::{Collection, NodeId};

use crate::graph::{DataGraph, EdgeKind};

/// A hop on a connection path between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Node reached by this hop.
    pub node: NodeId,
    /// Edge kind used to reach it.
    pub kind: EdgeKind,
}

/// Result of a bounded breadth-first search from one node.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Distance (number of edges) from the source to each reached node.
    pub distances: HashMap<NodeId, usize>,
    /// Predecessor of each reached node (for path reconstruction).
    pub predecessors: HashMap<NodeId, Hop>,
}

/// Breadth-first search from `source`, following tree and non-tree edges,
/// bounded by `max_depth` hops.
pub fn bfs(
    graph: &DataGraph,
    collection: &Collection,
    source: NodeId,
    max_depth: usize,
) -> BfsResult {
    let mut distances = HashMap::new();
    let mut predecessors = HashMap::new();
    let mut queue = VecDeque::new();
    distances.insert(source, 0usize);
    queue.push_back(source);
    while let Some(current) = queue.pop_front() {
        let depth = distances[&current];
        if depth >= max_depth {
            continue;
        }
        for (next, kind) in graph.neighbors(collection, current) {
            if let std::collections::hash_map::Entry::Vacant(e) = distances.entry(next) {
                e.insert(depth + 1);
                predecessors.insert(next, Hop { node: current, kind });
                queue.push_back(next);
            }
        }
    }
    BfsResult { distances, predecessors }
}

/// Shortest-path distance between two nodes (number of edges), bounded by
/// `max_depth`; `None` when no path exists within the bound.
pub fn shortest_distance(
    graph: &DataGraph,
    collection: &Collection,
    a: NodeId,
    b: NodeId,
    max_depth: usize,
) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let result = bfs(graph, collection, a, max_depth);
    result.distances.get(&b).copied()
}

/// Shortest path between two nodes as the sequence of intermediate hops
/// (excluding `a`, including `b`), bounded by `max_depth`.
pub fn shortest_path(
    graph: &DataGraph,
    collection: &Collection,
    a: NodeId,
    b: NodeId,
    max_depth: usize,
) -> Option<Vec<Hop>> {
    if a == b {
        return Some(Vec::new());
    }
    let result = bfs(graph, collection, a, max_depth);
    result.distances.get(&b)?;
    let mut path = Vec::new();
    let mut current = b;
    while current != a {
        let hop = result.predecessors.get(&current)?;
        path.push(Hop { node: current, kind: hop.kind });
        current = hop.node;
    }
    path.reverse();
    Some(path)
}

/// Pairwise shortest-path distances for a tuple of nodes.  Entry `(i, j)` is
/// `None` when nodes `i` and `j` are not connected within `max_depth`.
pub fn pairwise_distances(
    graph: &DataGraph,
    collection: &Collection,
    nodes: &[NodeId],
    max_depth: usize,
) -> Vec<Vec<Option<usize>>> {
    let mut matrix = vec![vec![None; nodes.len()]; nodes.len()];
    for (i, &a) in nodes.iter().enumerate() {
        let result = bfs(graph, collection, a, max_depth);
        for (j, &b) in nodes.iter().enumerate() {
            matrix[i][j] = result.distances.get(&b).copied();
        }
    }
    matrix
}

/// True when the tuple of nodes is connected in the data graph (every pair is
/// mutually reachable within `max_depth` hops).  This is the witness
/// requirement of Definition 4.
pub fn is_connected(
    graph: &DataGraph,
    collection: &Collection,
    nodes: &[NodeId],
    max_depth: usize,
) -> bool {
    if nodes.len() <= 1 {
        return true;
    }
    // Reachability from the first node suffices (the graph is undirected for
    // traversal purposes).
    let result = bfs(graph, collection, nodes[0], max_depth);
    nodes.iter().all(|n| result.distances.contains_key(n))
}

/// Size (total edge count) of an approximate minimal connecting subtree of the
/// tuple: a minimum spanning tree over the pairwise shortest-path distances.
/// `None` when the tuple is not connected within `max_depth`.
pub fn connecting_tree_size(
    graph: &DataGraph,
    collection: &Collection,
    nodes: &[NodeId],
    max_depth: usize,
) -> Option<usize> {
    match nodes.len() {
        0 => return Some(0),
        1 => return Some(0),
        _ => {}
    }
    let distances = pairwise_distances(graph, collection, nodes, max_depth);
    // Prim's algorithm over the complete terminal graph.
    let n = nodes.len();
    let mut in_tree = vec![false; n];
    let mut best = vec![usize::MAX; n];
    best[0] = 0;
    let mut total = 0usize;
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !in_tree[i])
            .min_by_key(|&i| best[i])
            .expect("at least one node outside the tree");
        if best[next] == usize::MAX {
            return None; // disconnected
        }
        in_tree[next] = true;
        total += best[next];
        for other in 0..n {
            if in_tree[other] {
                continue;
            }
            if let Some(d) = distances[next][other] {
                if d < best[other] {
                    best[other] = d;
                }
            }
        }
    }
    Some(total)
}

/// The compactness score of a tuple: `1 / (1 + size of the approximate
/// connecting subtree)`.  Tuples that are not connected within `max_depth`
/// score 0 and should be discarded by callers.
pub fn compactness(
    graph: &DataGraph,
    collection: &Collection,
    nodes: &[NodeId],
    max_depth: usize,
) -> f64 {
    match connecting_tree_size(graph, collection, nodes, max_depth) {
        Some(size) => 1.0 / (1.0 + size as f64),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphConfig;
    use seda_xmlstore::{parse_collection, DocId};

    fn setup() -> (Collection, DataGraph) {
        let c = parse_collection(vec![
            (
                "us.xml",
                r#"<country id="cty-us"><name>United States</name>
                     <economy>
                       <import_partners>
                         <item><trade_country>China</trade_country><percentage>15</percentage></item>
                         <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                       </import_partners>
                     </economy>
                   </country>"#,
            ),
            (
                "sea.xml",
                r#"<sea id="sea-pac"><name>Pacific Ocean</name>
                     <bordering country_idref="cty-us"/>
                   </sea>"#,
            ),
            ("island.xml", r#"<island id="isl-1"><name>Lonely Island</name></island>"#),
        ])
        .unwrap();
        let g = DataGraph::build(&c, &GraphConfig::default());
        (c, g)
    }

    fn find(c: &Collection, path: &str, content: &str) -> NodeId {
        let pid = c.paths().get_str(c.symbols(), path).unwrap();
        c.nodes_with_path(pid).into_iter().find(|&n| c.content(n).unwrap() == content).unwrap()
    }

    #[test]
    fn sibling_leaves_are_two_hops_apart() {
        let (c, g) = setup();
        let china = find(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct15 = find(&c, "/country/economy/import_partners/item/percentage", "15");
        assert_eq!(shortest_distance(&g, &c, china, pct15, 10), Some(2));
        // China and the *other* item's percentage are four hops apart.
        let pct169 = find(&c, "/country/economy/import_partners/item/percentage", "16.9");
        assert_eq!(shortest_distance(&g, &c, china, pct169, 10), Some(4));
    }

    #[test]
    fn cross_document_paths_use_idref_edges() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        let sea_name = find(&c, "/sea/name", "Pacific Ocean");
        // name -> country -(IdRef via bordering)-> ... -> sea -> name
        let d = shortest_distance(&g, &c, us_name, sea_name, 10).unwrap();
        assert_eq!(d, 4);
        let path = shortest_path(&g, &c, us_name, sea_name, 10).unwrap();
        assert_eq!(path.len(), d);
        assert!(path.iter().any(|h| h.kind == EdgeKind::IdRef));
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        let island = find(&c, "/island/name", "Lonely Island");
        assert_eq!(shortest_distance(&g, &c, us_name, island, 12), None);
        assert!(!is_connected(&g, &c, &[us_name, island], 12));
        assert_eq!(compactness(&g, &c, &[us_name, island], 12), 0.0);
    }

    #[test]
    fn max_depth_bounds_the_search() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        let sea_name = find(&c, "/sea/name", "Pacific Ocean");
        assert_eq!(shortest_distance(&g, &c, us_name, sea_name, 2), None);
        assert_eq!(shortest_distance(&g, &c, us_name, sea_name, 4), Some(4));
    }

    #[test]
    fn connected_tuples_and_compactness() {
        let (c, g) = setup();
        let china = find(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct15 = find(&c, "/country/economy/import_partners/item/percentage", "15");
        let pct169 = find(&c, "/country/economy/import_partners/item/percentage", "16.9");
        let us_name = find(&c, "/country/name", "United States");

        assert!(is_connected(&g, &c, &[us_name, china, pct15], 10));
        // The tighter tuple (China with its own percentage sibling) is more
        // compact than the mismatched tuple (China with Canada's percentage).
        let tight = compactness(&g, &c, &[us_name, china, pct15], 10);
        let loose = compactness(&g, &c, &[us_name, china, pct169], 10);
        assert!(tight > loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn singleton_and_empty_tuples_are_trivially_connected() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        assert!(is_connected(&g, &c, &[us_name], 1));
        assert!(is_connected(&g, &c, &[], 1));
        assert_eq!(connecting_tree_size(&g, &c, &[us_name], 1), Some(0));
        assert_eq!(connecting_tree_size(&g, &c, &[], 1), Some(0));
        assert_eq!(compactness(&g, &c, &[us_name], 1), 1.0);
    }

    #[test]
    fn shortest_path_endpoints_and_self_path() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        assert_eq!(shortest_path(&g, &c, us_name, us_name, 5), Some(vec![]));
        let root = NodeId::new(DocId(0), 0);
        let p = shortest_path(&g, &c, us_name, root, 5).unwrap();
        assert_eq!(p.last().unwrap().node, root);
    }

    #[test]
    fn pairwise_distances_matrix_is_symmetric() {
        let (c, g) = setup();
        let china = find(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct15 = find(&c, "/country/economy/import_partners/item/percentage", "15");
        let us_name = find(&c, "/country/name", "United States");
        let nodes = [us_name, china, pct15];
        let m = pairwise_distances(&g, &c, &nodes, 10);
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            assert_eq!(m[i][i], Some(0));
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
    }
}
