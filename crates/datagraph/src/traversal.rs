//! Graph traversal: shortest paths, connectedness of result tuples, and the
//! compactness measure used by the top-k scoring function.
//!
//! Definition 4 of the paper requires a query result tuple `<n1 … nm>` to be
//! witnessed by a *connected* subgraph of the data graph, and Sec. 4 scores
//! tuples by "the compactness of the graph representing a tuple of nodes":
//! smaller connecting subgraphs are better.  Computing the minimal connecting
//! subtree (a Steiner tree) is NP-hard in general, so — like every practical
//! system — we approximate it with a minimum spanning tree over the pairwise
//! shortest-path distances of the tuple's nodes.
//!
//! Distances are answered by the [`crate::ConnectivityIndex`] built at merge
//! time: a bounded query is a label intersection (counted in
//! [`TraversalScratch::label_probes`]), not a graph walk.  Hub labels are
//! exact up to the index radius; the rare query whose `max_depth` exceeds it
//! falls back to plain BFS (counted in [`TraversalScratch::bfs_visits`]).
//! The BFS implementation also remains available as
//! [`bfs_shortest_distance_with`] / [`bfs_shortest_path_with`] /
//! [`bfs_is_connected_with`] — the reference the oracle is property-tested
//! against.
//!
//! Every function exists in two flavours: a convenience form that allocates a
//! fresh [`TraversalScratch`] internally, and a `*_with` form that reuses a
//! caller-owned scratch.  The scratch holds **epoch-stamped** visited/distance
//! arrays indexed by the graph's dense node indices, so even the BFS fallback
//! touches no hash map and resets in O(1) between runs.

use seda_xmlstore::NodeId;

use crate::connectivity::{LabelScheme, SATURATED};
use crate::graph::{DataGraph, EdgeKind};

/// A hop on a connection path between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Node reached by this hop.
    pub node: NodeId,
    /// Edge kind used to reach it.
    pub kind: EdgeKind,
}

const UNSET: u32 = u32::MAX;

/// Reusable traversal state: epoch-stamped visited/distance/predecessor
/// arrays over the graph's dense node indices (for the BFS fallback and the
/// reference implementations), the work queue, and the small spanning-tree
/// buffers of the compactness computation.
///
/// One scratch serves any number of traversals over graphs of any size (the
/// arrays grow on demand); reuse it across queries to keep the read path
/// allocation-free.
#[derive(Debug, Default)]
pub struct TraversalScratch {
    /// Current epoch; a slot is visited iff `stamp[i] == epoch`.
    pub(crate) epoch: u32,
    pub(crate) stamp: Vec<u32>,
    pub(crate) dist: Vec<u32>,
    pub(crate) pred: Vec<(u32, EdgeKind)>,
    queue: Vec<u32>,
    /// Pairwise-distance matrix of the compactness computation (row-major,
    /// `UNSET` for unreachable), reused across tuples.
    matrix: Vec<u32>,
    in_tree: Vec<bool>,
    best: Vec<u32>,
    /// Total label entries scanned by connectivity-oracle intersections
    /// through this scratch (monotonic; the query profile reports deltas).
    pub label_probes: u64,
    /// Total nodes visited by BFS runs through this scratch — the reference
    /// implementations plus the deep-query fallback (monotonic).
    pub bfs_visits: u64,
    /// Optional work ceiling on `label_probes + bfs_visits`: once the sum
    /// reaches the ceiling, BFS runs stop expanding (clipping is counted in
    /// [`TraversalScratch::probe_clips`]).  Unreached nodes then read as
    /// disconnected — a *degraded* answer, so only resource-governed callers
    /// should arm this, and they must report the breach.  Label-only oracle
    /// answers stay exact; the ceiling merely bounds fallback walks.
    pub probe_ceiling: Option<u64>,
    /// BFS runs clipped by [`TraversalScratch::probe_ceiling`] (monotonic).
    pub probe_clips: u64,
}

impl TraversalScratch {
    /// Creates an empty scratch; arrays are sized on first use.
    pub fn new() -> Self {
        TraversalScratch::default()
    }

    /// Starts a new traversal epoch, growing the arrays to `nodes` slots.
    fn begin(&mut self, nodes: usize) {
        if self.stamp.len() < nodes {
            self.stamp.resize(nodes, 0);
            self.dist.resize(nodes, 0);
            self.pred.resize(nodes, (0, EdgeKind::ParentChild));
        }
        // Epoch 0 means "never stamped"; on wrap-around every stamp is
        // cleared so stale marks cannot alias the new epoch.
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn visit(&mut self, dense: u32, dist: u32) {
        self.stamp[dense as usize] = self.epoch;
        self.dist[dense as usize] = dist;
        self.queue.push(dense);
        self.bfs_visits += 1;
    }

    #[inline]
    fn seen(&self, dense: u32) -> bool {
        self.stamp[dense as usize] == self.epoch
    }

    /// Distance of a dense node in the last BFS, or `None` if unreached.
    fn distance(&self, dense: u32) -> Option<u32> {
        self.seen(dense).then(|| self.dist[dense as usize])
    }
}

/// Breadth-first search from `source` over tree and non-tree edges, bounded
/// by `max_depth` hops.  On return the scratch holds the distances and
/// predecessors of every reached node (valid until the next traversal).
fn bfs_with(graph: &DataGraph, scratch: &mut TraversalScratch, source: u32, max_depth: usize) {
    scratch.begin(graph.node_count());
    scratch.visit(source, 0);
    let mut head = 0;
    while head < scratch.queue.len() {
        if let Some(ceiling) = scratch.probe_ceiling {
            if scratch.label_probes + scratch.bfs_visits >= ceiling {
                // Budget exhausted: stop expanding.  Nodes not yet reached
                // read as disconnected, which governed callers surface as a
                // degraded (prefix) answer rather than unbounded work.
                scratch.probe_clips += 1;
                return;
            }
        }
        let current = scratch.queue[head];
        head += 1;
        let depth = scratch.dist[current as usize];
        if depth as usize >= max_depth {
            continue;
        }
        for &(next, kind) in graph.neighbors_dense(current) {
            if !scratch.seen(next) {
                scratch.visit(next, depth + 1);
                scratch.pred[next as usize] = (current, kind);
            }
        }
    }
}

/// Rebuilds the hop sequence `a -> b` from the predecessor array of the last
/// BFS (which must have run from `a` and reached `b`).
fn path_from_pred(graph: &DataGraph, scratch: &TraversalScratch, da: u32, db: u32) -> Vec<Hop> {
    let mut path = Vec::new();
    let mut current = db;
    while current != da {
        let (prev, kind) = scratch.pred[current as usize];
        path.push(Hop { node: graph.node_id(current), kind });
        current = prev;
    }
    path.reverse();
    path
}

/// Outcome of consulting the connectivity oracle for a bounded distance.
enum OracleDistance {
    /// The labels answer the query exactly: `Some(d)` with `d <= max_depth`,
    /// or `None` when no path of at most `max_depth` hops exists.
    Known(Option<u32>),
    /// The query's `max_depth` exceeds what the labels certify (deeper than
    /// the hub radius, or a saturated tree label); only BFS can answer.
    NeedsBfs,
}

/// Bounded shortest-path distance via label intersection.
///
/// Correctness relies on three facts: documents in different components are
/// never connected; tree labels are exact at any depth; hub labels are exact
/// for all true distances `<= radius`, and only ever over-estimate beyond it.
fn oracle_distance(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    a: NodeId,
    b: NodeId,
    da: u32,
    db: u32,
    max_depth: usize,
) -> OracleDistance {
    if da == db {
        return OracleDistance::Known(Some(0));
    }
    if !graph.same_component(a, b) {
        return OracleDistance::Known(None);
    }
    let oracle = graph.connectivity();
    if !oracle.covers(graph.node_count()) {
        return OracleDistance::NeedsBfs;
    }
    let d = oracle.label_distance(da, db, &mut scratch.label_probes);
    match oracle.scheme(a.doc) {
        LabelScheme::Tree => {
            // Tree components are single cross-edge-free documents, so both
            // endpoints share the document and the labels are exact — unless
            // a distance saturated `u16`, which only BFS can resolve.
            if d >= SATURATED {
                OracleDistance::NeedsBfs
            } else if d as usize <= max_depth {
                OracleDistance::Known(Some(d))
            } else {
                OracleDistance::Known(None)
            }
        }
        LabelScheme::Hub => {
            let radius = oracle.radius();
            if d as usize <= max_depth.min(radius) {
                // A label answer within the radius is the true distance.
                OracleDistance::Known(Some(d))
            } else if max_depth <= radius {
                // The labels cover every distance up to `max_depth`; finding
                // none there proves the true distance exceeds the bound.
                OracleDistance::Known(None)
            } else {
                OracleDistance::NeedsBfs
            }
        }
    }
}

/// Shortest-path distance between two nodes (number of edges), bounded by
/// `max_depth`; `None` when no path exists within the bound.
pub fn shortest_distance(
    graph: &DataGraph,
    a: NodeId,
    b: NodeId,
    max_depth: usize,
) -> Option<usize> {
    shortest_distance_with(graph, &mut TraversalScratch::new(), a, b, max_depth)
}

/// [`shortest_distance`] reusing a caller-owned scratch.
pub fn shortest_distance_with(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    a: NodeId,
    b: NodeId,
    max_depth: usize,
) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let (da, db) = (graph.dense(a)?, graph.dense(b)?);
    match oracle_distance(graph, scratch, a, b, da, db, max_depth) {
        OracleDistance::Known(d) => d.map(|d| d as usize),
        OracleDistance::NeedsBfs => {
            bfs_with(graph, scratch, da, max_depth);
            scratch.distance(db).map(|d| d as usize)
        }
    }
}

/// [`shortest_distance`] answered by plain breadth-first search — the
/// reference implementation the oracle is property-tested against.
pub fn bfs_shortest_distance_with(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    a: NodeId,
    b: NodeId,
    max_depth: usize,
) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let (da, db) = (graph.dense(a)?, graph.dense(b)?);
    bfs_with(graph, scratch, da, max_depth);
    scratch.distance(db).map(|d| d as usize)
}

/// Shortest path between two nodes as the sequence of intermediate hops
/// (excluding `a`, including `b`), bounded by `max_depth`.
pub fn shortest_path(
    graph: &DataGraph,
    a: NodeId,
    b: NodeId,
    max_depth: usize,
) -> Option<Vec<Hop>> {
    shortest_path_with(graph, &mut TraversalScratch::new(), a, b, max_depth)
}

/// [`shortest_path`] reusing a caller-owned scratch.  The returned hop vector
/// is freshly allocated (it escapes the scratch's lifetime).
///
/// The path is materialised by oracle-guided descent: from each node, step to
/// the first CSR neighbour whose label distance to the target is one less.
/// The result has exactly the shortest-path length; among equally short
/// paths the neighbour order (parent, children, cross edges) breaks ties
/// deterministically.
pub fn shortest_path_with(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    a: NodeId,
    b: NodeId,
    max_depth: usize,
) -> Option<Vec<Hop>> {
    if a == b {
        return Some(Vec::new());
    }
    let (da, db) = (graph.dense(a)?, graph.dense(b)?);
    let total = match oracle_distance(graph, scratch, a, b, da, db, max_depth) {
        OracleDistance::Known(None) => return None,
        OracleDistance::Known(Some(d)) => d,
        OracleDistance::NeedsBfs => {
            bfs_with(graph, scratch, da, max_depth);
            scratch.distance(db)?;
            return Some(path_from_pred(graph, scratch, da, db));
        }
    };
    let oracle = graph.connectivity();
    let mut path = Vec::with_capacity(total as usize);
    let mut current = da;
    let mut remaining = total;
    'descend: while remaining > 0 {
        for &(next, kind) in graph.neighbors_dense(current) {
            let advances = if remaining == 1 {
                next == db
            } else {
                // `remaining - 1` is within the certified range, so the label
                // distance equals the true distance exactly when it matches.
                oracle.label_distance(next, db, &mut scratch.label_probes) == remaining - 1
            };
            if advances {
                path.push(Hop { node: graph.node_id(next), kind });
                current = next;
                remaining -= 1;
                continue 'descend;
            }
        }
        // Unreachable with exact labels; keep a safe way out regardless.
        bfs_with(graph, scratch, da, max_depth);
        scratch.distance(db)?;
        return Some(path_from_pred(graph, scratch, da, db));
    }
    Some(path)
}

/// [`shortest_path`] materialised from a breadth-first search — the reference
/// implementation the oracle-guided descent is property-tested against.
pub fn bfs_shortest_path_with(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    a: NodeId,
    b: NodeId,
    max_depth: usize,
) -> Option<Vec<Hop>> {
    if a == b {
        return Some(Vec::new());
    }
    let (da, db) = (graph.dense(a)?, graph.dense(b)?);
    bfs_with(graph, scratch, da, max_depth);
    scratch.distance(db)?;
    Some(path_from_pred(graph, scratch, da, db))
}

/// Pairwise shortest-path distances for a tuple of nodes.  Entry `(i, j)` is
/// `None` when nodes `i` and `j` are not connected within `max_depth`.
pub fn pairwise_distances(
    graph: &DataGraph,
    nodes: &[NodeId],
    max_depth: usize,
) -> Vec<Vec<Option<usize>>> {
    let mut scratch = TraversalScratch::new();
    let n = nodes.len();
    fill_distance_matrix(graph, &mut scratch, nodes, max_depth);
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    let d = scratch.matrix[i * n + j];
                    (d != UNSET).then_some(d as usize)
                })
                .collect()
        })
        .collect()
}

/// Fills `scratch.matrix` (row-major, `UNSET` = unreachable) with the
/// pairwise bounded shortest-path distances of `nodes`, one oracle probe per
/// pair (plus a BFS per row when the bound exceeds the label radius).
fn fill_distance_matrix(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    nodes: &[NodeId],
    max_depth: usize,
) {
    let n = nodes.len();
    scratch.matrix.clear();
    scratch.matrix.resize(n * n, UNSET);
    for (i, &a) in nodes.iter().enumerate() {
        if graph.dense(a).is_some() {
            scratch.matrix[i * n + i] = 0;
        }
    }
    for i in 0..n {
        let Some(di) = graph.dense(nodes[i]) else { continue };
        let mut bfs_ran = false;
        for j in (i + 1)..n {
            let Some(dj) = graph.dense(nodes[j]) else { continue };
            let d = match oracle_distance(graph, scratch, nodes[i], nodes[j], di, dj, max_depth) {
                OracleDistance::Known(d) => d,
                OracleDistance::NeedsBfs => {
                    if !bfs_ran {
                        bfs_with(graph, scratch, di, max_depth);
                        bfs_ran = true;
                    }
                    scratch.distance(dj)
                }
            };
            if let Some(d) = d {
                scratch.matrix[i * n + j] = d;
                scratch.matrix[j * n + i] = d;
            }
        }
    }
}

/// True when the tuple of nodes is connected in the data graph (every node is
/// reachable from the first within `max_depth` hops).  This is the witness
/// requirement of Definition 4.
pub fn is_connected(graph: &DataGraph, nodes: &[NodeId], max_depth: usize) -> bool {
    is_connected_with(graph, &mut TraversalScratch::new(), nodes, max_depth)
}

/// [`is_connected`] reusing a caller-owned scratch.
pub fn is_connected_with(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    nodes: &[NodeId],
    max_depth: usize,
) -> bool {
    if nodes.len() <= 1 {
        return true;
    }
    // Reachability from the first node suffices (the graph is undirected for
    // traversal purposes).
    let Some(first) = graph.dense(nodes[0]) else { return false };
    let mut bfs_ran = false;
    for &n in &nodes[1..] {
        let Some(dn) = graph.dense(n) else { return false };
        match oracle_distance(graph, scratch, nodes[0], n, first, dn, max_depth) {
            OracleDistance::Known(Some(_)) => {}
            OracleDistance::Known(None) => return false,
            OracleDistance::NeedsBfs => {
                // One BFS from the first node answers every fallback pair of
                // this tuple (oracle probes in between never disturb it).
                if !bfs_ran {
                    bfs_with(graph, scratch, first, max_depth);
                    bfs_ran = true;
                }
                if !scratch.seen(dn) {
                    return false;
                }
            }
        }
    }
    true
}

/// [`is_connected`] answered by plain breadth-first search — the reference
/// implementation the oracle is property-tested against.
pub fn bfs_is_connected_with(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    nodes: &[NodeId],
    max_depth: usize,
) -> bool {
    if nodes.len() <= 1 {
        return true;
    }
    let Some(first) = graph.dense(nodes[0]) else { return false };
    bfs_with(graph, scratch, first, max_depth);
    nodes.iter().all(|&n| graph.dense(n).map(|d| scratch.seen(d)).unwrap_or(false))
}

/// Size (total edge count) of an approximate minimal connecting subtree of the
/// tuple: a minimum spanning tree over the pairwise shortest-path distances.
/// `None` when the tuple is not connected within `max_depth`.
pub fn connecting_tree_size(
    graph: &DataGraph,
    nodes: &[NodeId],
    max_depth: usize,
) -> Option<usize> {
    connecting_tree_size_with(graph, &mut TraversalScratch::new(), nodes, max_depth)
}

/// [`connecting_tree_size`] reusing a caller-owned scratch.
pub fn connecting_tree_size_with(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    nodes: &[NodeId],
    max_depth: usize,
) -> Option<usize> {
    let n = nodes.len();
    if n <= 1 {
        return Some(0);
    }
    if n == 2 {
        // The connecting tree of a pair is its shortest path: answer with one
        // oracle probe instead of the matrix + Prim machinery.  Pairs are the
        // dominant tuple shape of two-term queries, so this is the hot path.
        return shortest_distance_with(graph, scratch, nodes[0], nodes[1], max_depth);
    }
    fill_distance_matrix(graph, scratch, nodes, max_depth);
    // Prim's algorithm over the complete terminal graph.
    scratch.in_tree.clear();
    scratch.in_tree.resize(n, false);
    scratch.best.clear();
    scratch.best.resize(n, UNSET);
    scratch.best[0] = 0;
    let mut total = 0usize;
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !scratch.in_tree[i])
            .min_by_key(|&i| scratch.best[i])
            .expect("invariant: the non-tree branch holds at least one node outside the tree");
        if scratch.best[next] == UNSET {
            return None; // disconnected
        }
        scratch.in_tree[next] = true;
        total += scratch.best[next] as usize;
        for other in 0..n {
            if scratch.in_tree[other] {
                continue;
            }
            let d = scratch.matrix[next * n + other];
            if d < scratch.best[other] {
                scratch.best[other] = d;
            }
        }
    }
    Some(total)
}

/// The compactness score of a tuple: `1 / (1 + size of the approximate
/// connecting subtree)`.  Tuples that are not connected within `max_depth`
/// score 0 and should be discarded by callers.
pub fn compactness(graph: &DataGraph, nodes: &[NodeId], max_depth: usize) -> f64 {
    compactness_with(graph, &mut TraversalScratch::new(), nodes, max_depth)
}

/// [`compactness`] reusing a caller-owned scratch.
pub fn compactness_with(
    graph: &DataGraph,
    scratch: &mut TraversalScratch,
    nodes: &[NodeId],
    max_depth: usize,
) -> f64 {
    match connecting_tree_size_with(graph, scratch, nodes, max_depth) {
        Some(size) => 1.0 / (1.0 + size as f64),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphConfig;
    use seda_xmlstore::{parse_collection, Collection, DocId};

    fn setup() -> (Collection, DataGraph) {
        let c = parse_collection(vec![
            (
                "us.xml",
                r#"<country id="cty-us"><name>United States</name>
                     <economy>
                       <import_partners>
                         <item><trade_country>China</trade_country><percentage>15</percentage></item>
                         <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                       </import_partners>
                     </economy>
                   </country>"#,
            ),
            (
                "sea.xml",
                r#"<sea id="sea-pac"><name>Pacific Ocean</name>
                     <bordering country_idref="cty-us"/>
                   </sea>"#,
            ),
            ("island.xml", r#"<island id="isl-1"><name>Lonely Island</name></island>"#),
        ])
        .unwrap();
        let g = DataGraph::build(&c, &GraphConfig::default());
        (c, g)
    }

    fn find(c: &Collection, path: &str, content: &str) -> NodeId {
        let pid = c.paths().get_str(c.symbols(), path).unwrap();
        c.nodes_with_path(pid).into_iter().find(|&n| c.content(n).unwrap() == content).unwrap()
    }

    #[test]
    fn sibling_leaves_are_two_hops_apart() {
        let (c, g) = setup();
        let china = find(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct15 = find(&c, "/country/economy/import_partners/item/percentage", "15");
        assert_eq!(shortest_distance(&g, china, pct15, 10), Some(2));
        // China and the *other* item's percentage are four hops apart.
        let pct169 = find(&c, "/country/economy/import_partners/item/percentage", "16.9");
        assert_eq!(shortest_distance(&g, china, pct169, 10), Some(4));
    }

    #[test]
    fn cross_document_paths_use_idref_edges() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        let sea_name = find(&c, "/sea/name", "Pacific Ocean");
        // name -> country -(IdRef via bordering)-> ... -> sea -> name
        let d = shortest_distance(&g, us_name, sea_name, 10).unwrap();
        assert_eq!(d, 4);
        let path = shortest_path(&g, us_name, sea_name, 10).unwrap();
        assert_eq!(path.len(), d);
        assert!(path.iter().any(|h| h.kind == EdgeKind::IdRef));
    }

    #[test]
    fn disconnected_nodes_have_no_path() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        let island = find(&c, "/island/name", "Lonely Island");
        assert_eq!(shortest_distance(&g, us_name, island, 12), None);
        assert!(!is_connected(&g, &[us_name, island], 12));
        assert_eq!(compactness(&g, &[us_name, island], 12), 0.0);
    }

    #[test]
    fn max_depth_bounds_the_search() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        let sea_name = find(&c, "/sea/name", "Pacific Ocean");
        assert_eq!(shortest_distance(&g, us_name, sea_name, 2), None);
        assert_eq!(shortest_distance(&g, us_name, sea_name, 4), Some(4));
    }

    #[test]
    fn connected_tuples_and_compactness() {
        let (c, g) = setup();
        let china = find(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct15 = find(&c, "/country/economy/import_partners/item/percentage", "15");
        let pct169 = find(&c, "/country/economy/import_partners/item/percentage", "16.9");
        let us_name = find(&c, "/country/name", "United States");

        assert!(is_connected(&g, &[us_name, china, pct15], 10));
        // The tighter tuple (China with its own percentage sibling) is more
        // compact than the mismatched tuple (China with Canada's percentage).
        let tight = compactness(&g, &[us_name, china, pct15], 10);
        let loose = compactness(&g, &[us_name, china, pct169], 10);
        assert!(tight > loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn singleton_and_empty_tuples_are_trivially_connected() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        assert!(is_connected(&g, &[us_name], 1));
        assert!(is_connected(&g, &[], 1));
        assert_eq!(connecting_tree_size(&g, &[us_name], 1), Some(0));
        assert_eq!(connecting_tree_size(&g, &[], 1), Some(0));
        assert_eq!(compactness(&g, &[us_name], 1), 1.0);
    }

    #[test]
    fn shortest_path_endpoints_and_self_path() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        assert_eq!(shortest_path(&g, us_name, us_name, 5), Some(vec![]));
        let root = NodeId::new(DocId(0), 0);
        let p = shortest_path(&g, us_name, root, 5).unwrap();
        assert_eq!(p.last().unwrap().node, root);
    }

    #[test]
    fn pairwise_distances_matrix_is_symmetric() {
        let (c, g) = setup();
        let china = find(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct15 = find(&c, "/country/economy/import_partners/item/percentage", "15");
        let us_name = find(&c, "/country/name", "United States");
        let nodes = [us_name, china, pct15];
        let m = pairwise_distances(&g, &nodes, 10);
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            assert_eq!(m[i][i], Some(0));
            for j in 0..3 {
                assert_eq!(m[i][j], m[j][i]);
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_traversals() {
        let (c, g) = setup();
        let mut scratch = TraversalScratch::new();
        let nodes: Vec<NodeId> = c.documents().flat_map(|d| d.node_ids()).collect();
        for &a in &nodes {
            for &b in &nodes {
                assert_eq!(
                    shortest_distance_with(&g, &mut scratch, a, b, 12),
                    shortest_distance(&g, a, b, 12),
                    "scratch reuse changed the distance of {a:?} -> {b:?}"
                );
            }
        }
        assert!(scratch.label_probes > 0, "reused scratch accounts its label probes");
    }

    #[test]
    fn oracle_matches_bfs_reference_at_every_depth() {
        let (c, g) = setup();
        let mut scratch = TraversalScratch::new();
        let nodes: Vec<NodeId> = c.documents().flat_map(|d| d.node_ids()).collect();
        // Depths straddle the hub radius to exercise both the label path and
        // the BFS fallback.
        for depth in [0usize, 1, 2, 5, 12, g.connectivity().radius() + 4] {
            for &a in &nodes {
                for &b in &nodes {
                    let reference = bfs_shortest_distance_with(&g, &mut scratch, a, b, depth);
                    assert_eq!(
                        shortest_distance_with(&g, &mut scratch, a, b, depth),
                        reference,
                        "oracle disagrees with BFS for {a:?} -> {b:?} at depth {depth}"
                    );
                    let path = shortest_path_with(&g, &mut scratch, a, b, depth);
                    assert_eq!(path.map(|p| p.len()), reference, "path length must be shortest");
                    assert_eq!(
                        is_connected_with(&g, &mut scratch, &[a, b], depth),
                        bfs_is_connected_with(&g, &mut scratch, &[a, b], depth),
                        "is_connected diverged for {a:?}, {b:?} at depth {depth}"
                    );
                }
            }
        }
    }

    #[test]
    fn probe_ceiling_clips_bfs_and_disarms_cleanly() {
        let (c, g) = setup();
        let us_name = find(&c, "/country/name", "United States");
        let sea_name = find(&c, "/sea/name", "Pacific Ocean");
        let mut scratch = TraversalScratch::new();

        // An exhausted ceiling makes BFS answers read as disconnected and
        // counts the clip.
        scratch.probe_ceiling = Some(scratch.label_probes + scratch.bfs_visits + 1);
        assert_eq!(bfs_shortest_distance_with(&g, &mut scratch, us_name, sea_name, 10), None);
        assert!(scratch.probe_clips > 0, "clipped BFS runs must be counted");

        // Disarming restores exact answers through the same scratch.
        scratch.probe_ceiling = None;
        assert_eq!(bfs_shortest_distance_with(&g, &mut scratch, us_name, sea_name, 10), Some(4));
    }

    /// Reference BFS over `HashMap`s (the pre-CSR implementation), used to pin
    /// the CSR + epoch-stamped implementation.
    fn reference_bfs_distances(
        graph: &DataGraph,
        source: NodeId,
        max_depth: usize,
    ) -> std::collections::HashMap<NodeId, usize> {
        use std::collections::{HashMap, VecDeque};
        let mut distances = HashMap::new();
        let mut queue = VecDeque::new();
        distances.insert(source, 0usize);
        queue.push_back(source);
        while let Some(current) = queue.pop_front() {
            let depth = distances[&current];
            if depth >= max_depth {
                continue;
            }
            for (next, _) in graph.neighbors(current) {
                if let std::collections::hash_map::Entry::Vacant(e) = distances.entry(next) {
                    e.insert(depth + 1);
                    queue.push_back(next);
                }
            }
        }
        distances
    }

    #[test]
    fn csr_bfs_matches_hashmap_reference() {
        let (c, g) = setup();
        let mut scratch = TraversalScratch::new();
        for doc in c.documents() {
            for source in doc.node_ids() {
                for depth in [1usize, 3, 12] {
                    let reference = reference_bfs_distances(&g, source, depth);
                    for target in c.documents().flat_map(|d| d.node_ids()) {
                        assert_eq!(
                            shortest_distance_with(&g, &mut scratch, source, target, depth),
                            reference.get(&target).copied(),
                            "oracle disagrees with reference for {source:?} -> {target:?} at depth {depth}"
                        );
                    }
                }
            }
        }
    }
}
