//! Structural invariant auditing — the `seda-audit` layer for the full-text
//! indexes.
//!
//! # Invariant catalog (substrate `textindex`)
//!
//! | class | invariant |
//! |---|---|
//! | `termdict-bijection` | the term dictionary round-trips: `get(resolve(id)) == id` both ways, one id per term |
//! | `csr-offsets` | `posting_offsets` has length `dict.len() + 1`, starts at 0, is monotone and ends at the arena length |
//! | `postings-sorted` | every per-term posting slice is sorted by (score desc, node asc), scores finite, nodes distinct |
//! | `node-side-table` | slots are dense and ascending by node id; `node_slots` is the exact inverse; side tables align |
//! | `context-paths` | every path referenced by the context index is a member of its own `all_paths` universe |
//!
//! The violation type lives in [`seda_xmlstore::audit`] so every substrate
//! reports through one shape; see there for the catalog conventions.

use seda_xmlstore::audit::{finish, AuditResult, InvariantViolation};
use seda_xmlstore::NodeId;

use crate::context_index::ContextIndex;
use crate::dict::TermId;
use crate::node_index::NodeIndex;

const SUBSTRATE: &str = "textindex";

impl NodeIndex {
    /// Verifies the frozen read model: dictionary bijection, CSR offset
    /// well-formedness, per-term posting order and the node side table.
    pub fn verify(&self) -> AuditResult {
        let mut violations = Vec::new();
        self.verify_dict(&mut violations);
        self.verify_posting_arena(&mut violations);
        self.verify_side_table(&mut violations);
        finish(violations)
    }

    fn verify_dict(&self, violations: &mut Vec<InvariantViolation>) {
        if self.dict.ids.len() != self.dict.terms.len() {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "termdict-bijection",
                format!(
                    "{} reverse entries for {} terms",
                    self.dict.ids.len(),
                    self.dict.terms.len()
                ),
            ));
        }
        for (id, term) in self.dict.terms() {
            if self.dict.get(term) != Some(id) {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "termdict-bijection",
                    format!("term {term:?} does not round-trip to id {}", id.0),
                ));
            }
        }
        if self.dict.len() != self.postings.len() {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "termdict-bijection",
                format!(
                    "dictionary holds {} terms but the index has {} posting lists",
                    self.dict.len(),
                    self.postings.len()
                ),
            ));
        }
        if self.idf_by_term.len() != self.dict.len() {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "termdict-bijection",
                format!("{} idf entries for {} terms", self.idf_by_term.len(), self.dict.len()),
            ));
        }
    }

    fn verify_posting_arena(&self, violations: &mut Vec<InvariantViolation>) {
        let offsets = &self.posting_offsets;
        if offsets.is_empty() && self.dict.is_empty() && self.sorted_postings.is_empty() {
            // A default-constructed (never merged) index has no frozen arena
            // at all, which is well-formed vacuously.
            return;
        }
        if offsets.len() != self.dict.len() + 1 {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "csr-offsets",
                format!("{} offsets for {} terms", offsets.len(), self.dict.len()),
            ));
            return;
        }
        if offsets.first() != Some(&0)
            || offsets.last().map(|&o| o as usize) != Some(self.sorted_postings.len())
        {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "csr-offsets",
                format!(
                    "offsets span {:?}..{:?} over an arena of {}",
                    offsets.first(),
                    offsets.last(),
                    self.sorted_postings.len()
                ),
            ));
        }
        for (i, pair) in offsets.windows(2).enumerate() {
            if pair[0] > pair[1] {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "csr-offsets",
                    format!("offset {i} decreases: {} > {}", pair[0], pair[1]),
                ));
            }
        }
        for id in 0..self.dict.len() as u32 {
            let (start, end) =
                (self.posting_offsets[id as usize], self.posting_offsets[id as usize + 1]);
            if start > end || end as usize > self.sorted_postings.len() {
                continue; // already reported as a csr-offsets violation
            }
            let slice = &self.sorted_postings[start as usize..end as usize];
            for (i, pair) in slice.windows(2).enumerate() {
                let ordered = pair[0].score > pair[1].score
                    || (pair[0].score == pair[1].score && pair[0].node < pair[1].node);
                if !ordered {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "postings-sorted",
                        format!(
                            "term {:?} postings {i},{}: ({:?}, {}) then ({:?}, {})",
                            self.dict.resolve(TermId(id)),
                            i + 1,
                            pair[0].node,
                            pair[0].score,
                            pair[1].node,
                            pair[1].score
                        ),
                    ));
                }
            }
            for scored in slice {
                if !scored.score.is_finite() {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "postings-sorted",
                        format!(
                            "term {:?} posting for {:?} has non-finite score",
                            self.dict.resolve(TermId(id)),
                            scored.node
                        ),
                    ));
                }
            }
        }
    }

    fn verify_side_table(&self, violations: &mut Vec<InvariantViolation>) {
        let n = self.slot_nodes.len();
        if self.slot_paths.len() != n
            || self.slot_token_counts.len() != n
            || self.node_slots.len() != n
            || self.indexed_nodes != n
        {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "node-side-table",
                format!(
                    "side tables disagree: {} nodes, {} paths, {} lengths, {} slots, {} counted",
                    n,
                    self.slot_paths.len(),
                    self.slot_token_counts.len(),
                    self.node_slots.len(),
                    self.indexed_nodes
                ),
            ));
        }
        for (i, pair) in self.slot_nodes.windows(2).enumerate() {
            if pair[0] >= pair[1] {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "node-side-table",
                    format!(
                        "slot {i} node {:?} not before slot {} node {:?}",
                        pair[0],
                        i + 1,
                        pair[1]
                    ),
                ));
            }
        }
        for (slot, node) in self.slot_nodes.iter().enumerate() {
            if self.node_slots.get(node).copied() != Some(slot as u32) {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "node-side-table",
                    format!("slot {slot} node {node:?} missing its inverse mapping"),
                ));
            }
        }
    }

    /// Test-only corruption hook: swaps two entries of the frozen posting
    /// arena (breaks `postings-sorted` without touching offsets).
    #[doc(hidden)]
    pub fn corrupt_swap_sorted_postings(&mut self, a: usize, b: usize) {
        self.sorted_postings.swap(a, b);
    }

    /// Test-only corruption hook: overwrites one CSR offset (breaks
    /// `csr-offsets` monotonicity / bounds).
    #[doc(hidden)]
    pub fn corrupt_posting_offset(&mut self, index: usize, value: u32) {
        self.posting_offsets[index] = value;
    }

    /// Test-only corruption hook: rewrites one dictionary term without
    /// updating the reverse map (breaks `termdict-bijection`).
    #[doc(hidden)]
    pub fn corrupt_dict_term(&mut self, id: TermId, term: &str) {
        self.dict.terms[id.index()] = term.to_string();
    }

    /// Test-only corruption hook: swaps two node side-table slots (breaks
    /// `node-side-table` ordering and the inverse mapping).
    #[doc(hidden)]
    pub fn corrupt_swap_slot_nodes(&mut self, a: usize, b: usize) {
        self.slot_nodes.swap(a, b);
    }

    /// The number of entries in the frozen posting arena (sizing input for
    /// the corruption suite's swap hook).
    #[doc(hidden)]
    pub fn sorted_posting_len(&self) -> usize {
        self.sorted_postings.len()
    }

    /// One term's `[start, end)` slice of the frozen posting arena (targeting
    /// input for the corruption suite's swap hook).
    #[doc(hidden)]
    pub fn posting_range(&self, id: TermId) -> (usize, usize) {
        let start = self.posting_offsets[id.index()] as usize;
        let end = self.posting_offsets[id.index() + 1] as usize;
        (start, end)
    }
}

impl ContextIndex {
    /// Verifies that every path the context index references belongs to its
    /// own path universe, and that duplicated posting counts exist exactly
    /// when the `PostingLists` storage design is active.
    pub fn verify(&self) -> AuditResult {
        let mut violations = Vec::new();
        let mut check_member = |path: &seda_xmlstore::PathId, role: &str| {
            if !self.all_paths.contains(path) {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "context-paths",
                    format!("{role} references path {} outside the universe", path.0),
                ));
            }
        };
        for path in &self.text_paths {
            check_member(path, "text-path set");
        }
        for (term, paths) in &self.keyword_paths {
            for path in paths {
                check_member(path, &format!("keyword {term:?}"));
            }
        }
        for path in self.path_occurrences.keys() {
            check_member(path, "occurrence counts");
        }
        for path in self.path_document_frequency.keys() {
            check_member(path, "document frequencies");
        }
        for (term, path) in self.posting_counts.keys() {
            check_member(path, &format!("posting count of {term:?}"));
        }
        if self.storage == crate::context_index::CountStorage::DocumentStore
            && !self.posting_counts.is_empty()
        {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "context-paths",
                format!(
                    "document-store design carries {} duplicated posting counts",
                    self.posting_counts.len()
                ),
            ));
        }
        finish(violations)
    }

    /// Test-only corruption hook: registers a text path outside the path
    /// universe (breaks `context-paths`).
    #[doc(hidden)]
    pub fn corrupt_insert_text_path(&mut self, path: seda_xmlstore::PathId) {
        self.text_paths.insert(path);
    }
}

/// A [`NodeId`] guaranteed not to exist in small test corpora; used by the
/// corruption suite to desynchronise side tables.
#[doc(hidden)]
pub fn bogus_node() -> NodeId {
    NodeId::new(seda_xmlstore::DocId(u32::MAX), u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context_index::CountStorage;
    use seda_xmlstore::parse_collection;

    fn sample() -> (seda_xmlstore::Collection, NodeIndex) {
        let collection = parse_collection(vec![
            ("a.xml", "<country><name>United States</name><year>2006</year></country>"),
            ("b.xml", "<country><name>United Mexican States</name><year>2003</year></country>"),
        ])
        .unwrap();
        let index = NodeIndex::build(&collection);
        (collection, index)
    }

    #[test]
    fn fresh_indexes_pass() {
        let (collection, index) = sample();
        assert_eq!(index.verify(), Ok(()));
        let ctx = ContextIndex::build(&collection, CountStorage::DocumentStore);
        assert_eq!(ctx.verify(), Ok(()));
        assert_eq!(NodeIndex::default().verify(), Ok(()));
    }

    #[test]
    fn swapped_postings_fail_postings_sorted() {
        let (_, mut index) = sample();
        // "united" has two postings with distinct scores; swapping them breaks
        // the (score desc, node asc) order of exactly one term slice.
        let term = index.term_dict().get("united").unwrap();
        let start = index.posting_offsets[term.index()] as usize;
        index.corrupt_swap_sorted_postings(start, start + 1);
        let violations = index.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "postings-sorted"), "{violations:?}");
    }

    #[test]
    fn decreasing_offset_fails_csr_offsets() {
        let (_, mut index) = sample();
        index.corrupt_posting_offset(1, u32::MAX);
        let violations = index.verify().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "csr-offsets"), "{violations:?}");
    }

    #[test]
    fn rewritten_term_fails_bijection() {
        let (_, mut index) = sample();
        index.corrupt_dict_term(TermId(0), "zzz-intruder");
        let violations = index.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "termdict-bijection"), "{violations:?}");
    }

    #[test]
    fn swapped_slots_fail_side_table() {
        let (_, mut index) = sample();
        index.corrupt_swap_slot_nodes(0, 1);
        let violations = index.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "node-side-table"), "{violations:?}");
    }

    #[test]
    fn foreign_text_path_fails_context_paths() {
        let (collection, _) = sample();
        let mut ctx = ContextIndex::build(&collection, CountStorage::DocumentStore);
        ctx.corrupt_insert_text_path(seda_xmlstore::PathId(9999));
        let violations = ctx.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "context-paths"), "{violations:?}");
    }
}
