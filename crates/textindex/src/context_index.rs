//! The keyword → distinct-path "context" index of Figure 8.
//!
//! The paper maintains "a full-text index which maps individual keywords to
//! the set of distinct paths in which they appear", treating each distinct
//! root-to-leaf path as a virtual document whose content is (a) the text of
//! every node with that context and (b) the tag names on the path itself.
//! SEDA uses this index to compute the *context bucket* of every query term —
//! all distinct paths the term appears in across the entire collection —
//! together with the absolute frequency of each path (not the frequency of the
//! keyword within the path; Sec. 5 explains that choice).
//!
//! The paper discusses two designs for the per-path counts: storing them in
//! the document store (one count per path) or duplicating them into every
//! posting list.  Both are implemented here behind [`CountStorage`] so the
//! trade-off can be measured.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, DocId, Document, PathId};

use crate::query::FullTextQuery;
use crate::tokenize::terms;

/// Where the per-path occurrence counts are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CountStorage {
    /// Counts live in a single map keyed by path ("document store" design,
    /// the paper's choice): no duplication, but resolving a frequency is a
    /// second lookup.
    DocumentStore,
    /// Counts are duplicated into every posting ("posting list" design): one
    /// lookup, more memory.
    PostingLists,
}

/// One entry of a context bucket: a distinct path plus its absolute frequency
/// in the collection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathEntry {
    /// The distinct root-to-leaf path.
    pub path: PathId,
    /// Number of occurrences of this path across all documents (the paper
    /// displays this count, irrespective of the keyword).
    pub frequency: usize,
    /// Number of documents containing this path.
    pub document_frequency: usize,
}

/// The Fig. 8 keyword → paths index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextIndex {
    pub(crate) storage: CountStorage,
    /// keyword → set of paths whose virtual document contains the keyword.
    pub(crate) keyword_paths: HashMap<String, BTreeSet<PathId>>,
    /// Per-(keyword, path) counts; only populated for `PostingLists` storage.
    pub(crate) posting_counts: HashMap<(String, PathId), usize>,
    /// Path → total occurrence count (the "document store").
    pub(crate) path_occurrences: HashMap<PathId, usize>,
    /// Path → number of documents containing the path.
    pub(crate) path_document_frequency: HashMap<PathId, usize>,
    /// All paths in the collection (needed for match-all and NOT queries).
    pub(crate) all_paths: BTreeSet<PathId>,
    /// Paths whose nodes carry text content (match-all context buckets are
    /// restricted to these, since a `*` search query requires content).
    pub(crate) text_paths: BTreeSet<PathId>,
}

/// Partial context index over a single document, produced by
/// [`ContextIndex::build_shard`] and consumed by [`ContextIndex::merge`].
///
/// The shard covers the document-content pass only; the collection-wide
/// tag-name pass (which iterates the shared path table, not the documents)
/// runs once inside [`ContextIndex::merge`].
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextIndexShard {
    doc: Option<DocId>,
    storage: Option<CountStorage>,
    keyword_paths: HashMap<String, BTreeSet<PathId>>,
    posting_counts: HashMap<(String, PathId), usize>,
    text_paths: BTreeSet<PathId>,
    element_paths: BTreeSet<PathId>,
    path_occurrences: HashMap<PathId, usize>,
}

impl ContextIndexShard {
    /// The document this shard was built from.
    pub fn doc(&self) -> Option<DocId> {
        self.doc
    }

    /// Number of distinct keywords contributed by this document's content.
    pub fn keyword_count(&self) -> usize {
        self.keyword_paths.len()
    }
}

impl ContextIndex {
    /// Builds the index over a collection.
    ///
    /// This is the sequential reference path; it is equivalent to building
    /// one shard per document with [`ContextIndex::build_shard`] and
    /// combining them with [`ContextIndex::merge`].
    pub fn build(collection: &Collection, storage: CountStorage) -> Self {
        let shards = collection.documents().map(|doc| Self::build_shard(doc, storage)).collect();
        Self::merge(collection, storage, shards)
    }

    /// Builds the partial index of a single document (the per-shard phase of
    /// the shard → merge build lifecycle).
    pub fn build_shard(doc: &Document, storage: CountStorage) -> ContextIndexShard {
        let mut shard = ContextIndexShard {
            doc: Some(doc.id),
            storage: Some(storage),
            ..ContextIndexShard::default()
        };
        for (_, node) in doc.iter() {
            shard.element_paths.insert(node.path);
            *shard.path_occurrences.entry(node.path).or_insert(0) += 1;
            // Content keywords.
            if let Some(text) = node.text.as_deref() {
                let tokens = terms(text);
                if !tokens.is_empty() {
                    shard.text_paths.insert(node.path);
                }
                for token in tokens {
                    shard.keyword_paths.entry(token.clone()).or_default().insert(node.path);
                    if storage == CountStorage::PostingLists {
                        *shard.posting_counts.entry((token, node.path)).or_insert(0) += 1;
                    }
                }
            }
        }
        shard
    }

    /// Merges per-document shards into the full index (the merge phase of the
    /// shard → merge build lifecycle).
    ///
    /// The collection is needed for the tag-name keyword pass, which runs over
    /// the shared path table exactly once here instead of once per shard.
    ///
    /// # Panics
    ///
    /// Panics if a shard was built with a different [`CountStorage`] than
    /// `storage`: a `DocumentStore` shard carries no duplicated posting
    /// counts, so merging it into a `PostingLists` index would silently drop
    /// frequencies.
    pub fn merge(
        collection: &Collection,
        storage: CountStorage,
        mut shards: Vec<ContextIndexShard>,
    ) -> Self {
        for shard in &shards {
            assert!(
                shard.storage.is_none() || shard.storage == Some(storage),
                "shard for {:?} was built with {:?}, cannot merge into a {storage:?} index",
                shard.doc,
                shard.storage,
            );
        }
        shards.sort_by_key(|s| s.doc);
        let mut keyword_paths: HashMap<String, BTreeSet<PathId>> = HashMap::new();
        let mut posting_counts: HashMap<(String, PathId), usize> = HashMap::new();
        let mut text_paths: BTreeSet<PathId> = BTreeSet::new();
        let mut all_paths: BTreeSet<PathId> = BTreeSet::new();
        let mut path_occurrences: HashMap<PathId, usize> = HashMap::new();
        let mut path_document_frequency: HashMap<PathId, usize> = HashMap::new();

        for shard in shards {
            for (term, paths) in shard.keyword_paths {
                keyword_paths.entry(term).or_default().extend(paths);
            }
            if storage == CountStorage::PostingLists {
                for (key, count) in shard.posting_counts {
                    *posting_counts.entry(key).or_insert(0) += count;
                }
            }
            text_paths.extend(shard.text_paths.iter().copied());
            all_paths.extend(shard.element_paths.iter().copied());
            for (&path, &count) in &shard.path_occurrences {
                *path_occurrences.entry(path).or_insert(0) += count;
            }
            for &path in &shard.element_paths {
                *path_document_frequency.entry(path).or_insert(0) += 1;
            }
        }

        // Tag-name keywords: every label on a path contributes the path to the
        // label's posting list.  The path table is shared by all documents, so
        // this pass is global rather than per shard.
        for (path_id, label_path) in collection.paths().iter() {
            for &step in label_path.steps() {
                for token in terms(collection.symbols().resolve(step)) {
                    keyword_paths.entry(token.clone()).or_default().insert(path_id);
                    if storage == CountStorage::PostingLists {
                        *posting_counts.entry((token, path_id)).or_insert(0) += 1;
                    }
                }
            }
            all_paths.insert(path_id);
        }

        ContextIndex {
            storage,
            keyword_paths,
            posting_counts,
            path_occurrences,
            path_document_frequency,
            all_paths,
            text_paths,
        }
    }

    /// The count-storage design this index was built with.
    pub fn storage(&self) -> CountStorage {
        self.storage
    }

    /// Number of distinct keywords (content terms plus tag-name terms).
    pub fn keyword_count(&self) -> usize {
        self.keyword_paths.len()
    }

    /// Number of distinct paths known to the index.
    pub fn path_count(&self) -> usize {
        self.all_paths.len()
    }

    /// Total occurrence count of a path in the collection.
    pub fn path_frequency(&self, path: PathId) -> usize {
        self.path_occurrences.get(&path).copied().unwrap_or(0)
    }

    /// Number of documents a path occurs in.
    pub fn path_document_frequency(&self, path: PathId) -> usize {
        self.path_document_frequency.get(&path).copied().unwrap_or(0)
    }

    /// Rough memory footprint of the postings + counts, in entries; used by
    /// the Fig. 8 design-ablation bench to compare the two count storages.
    pub fn count_entries(&self) -> usize {
        match self.storage {
            CountStorage::DocumentStore => self.path_occurrences.len(),
            CountStorage::PostingLists => self.posting_counts.len(),
        }
    }

    fn paths_for_term(&self, term: &str) -> BTreeSet<PathId> {
        self.keyword_paths.get(term).cloned().unwrap_or_default()
    }

    /// Distinct paths whose virtual document satisfies `query`.
    ///
    /// Keyword bags are conjunctive (every keyword must appear somewhere in
    /// the path's virtual document); phrases are approximated conjunctively at
    /// path granularity, which can only over-report contexts — the user will
    /// simply see an extra context to deselect.
    pub fn paths_matching(&self, query: &FullTextQuery) -> BTreeSet<PathId> {
        match query {
            FullTextQuery::Any => self.text_paths.clone(),
            FullTextQuery::Keywords(ts) | FullTextQuery::Phrase(ts) => {
                if ts.is_empty() {
                    return self.text_paths.clone();
                }
                let mut iter = ts.iter();
                let first = iter
                    .next()
                    .expect("invariant: the merge branch requires a non-empty shard list");
                let mut acc = self.paths_for_term(first);
                for t in iter {
                    let next = self.paths_for_term(t);
                    acc = acc.intersection(&next).copied().collect();
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
            FullTextQuery::And(a, b) => {
                let a = self.paths_matching(a);
                let b = self.paths_matching(b);
                a.intersection(&b).copied().collect()
            }
            FullTextQuery::Or(a, b) => {
                let a = self.paths_matching(a);
                let b = self.paths_matching(b);
                a.union(&b).copied().collect()
            }
            FullTextQuery::Not(inner) => {
                let inner = self.paths_matching(inner);
                self.all_paths.difference(&inner).copied().collect()
            }
        }
    }

    /// The context bucket of a search query: matching paths with their
    /// absolute frequencies, sorted by descending frequency (the order SEDA
    /// displays them in).
    pub fn context_bucket(&self, query: &FullTextQuery) -> Vec<PathEntry> {
        self.bucket_from_paths(self.paths_matching(query))
    }

    /// Context bucket restricted to paths whose *leaf tag name* matches
    /// `tag` (used when a query term carries a full root-to-leaf context or a
    /// tag-name context; Sec. 5 describes probing the index with the last tag
    /// name in conjunction with the search query).
    pub fn context_bucket_with_tag(
        &self,
        collection: &Collection,
        query: &FullTextQuery,
        tag: &str,
    ) -> Vec<PathEntry> {
        let matching = self.paths_matching(query);
        let filtered: BTreeSet<PathId> = matching
            .into_iter()
            .filter(|&p| {
                collection
                    .paths()
                    .resolve(p)
                    .leaf()
                    .map(|leaf| collection.symbols().resolve(leaf) == tag)
                    .unwrap_or(false)
            })
            .collect();
        self.bucket_from_paths(filtered)
    }

    fn bucket_from_paths(&self, paths: BTreeSet<PathId>) -> Vec<PathEntry> {
        let mut entries: Vec<PathEntry> = paths
            .into_iter()
            .map(|path| PathEntry {
                path,
                frequency: self.lookup_frequency(path),
                document_frequency: self.path_document_frequency(path),
            })
            .collect();
        entries.sort_by(|a, b| b.frequency.cmp(&a.frequency).then(a.path.cmp(&b.path)));
        entries
    }

    fn lookup_frequency(&self, path: PathId) -> usize {
        match self.storage {
            CountStorage::DocumentStore => self.path_frequency(path),
            CountStorage::PostingLists => {
                // The duplicated counts are per (keyword, path); the absolute
                // path frequency is still served from the per-path map, which
                // both designs keep for document statistics.
                self.path_frequency(path)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::parse_collection;

    fn sample() -> (Collection, ContextIndex) {
        let docs = vec![
            (
                "us.xml",
                r#"<country><name>United States</name><year>2006</year>
                   <economy>
                     <import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                     </import_partners>
                     <export_partners>
                       <item><trade_country>Canada</trade_country><percentage>23.4</percentage></item>
                     </export_partners>
                   </economy></country>"#,
            ),
            (
                "mexico.xml",
                r#"<country><name>Mexico</name><year>2003</year>
                   <economy>
                     <export_partners>
                       <item><trade_country>United States</trade_country><percentage>70.6</percentage></item>
                     </export_partners>
                   </economy></country>"#,
            ),
        ];
        let collection = parse_collection(docs).unwrap();
        let index = ContextIndex::build(&collection, CountStorage::DocumentStore);
        (collection, index)
    }

    fn path_strings(collection: &Collection, entries: &[PathEntry]) -> Vec<String> {
        entries.iter().map(|e| collection.path_string(e.path)).collect()
    }

    #[test]
    fn united_states_occurs_in_two_contexts() {
        let (collection, index) = sample();
        let bucket = index.context_bucket(&FullTextQuery::phrase("United States"));
        let paths = path_strings(&collection, &bucket);
        assert!(paths.contains(&"/country/name".to_string()));
        assert!(paths.contains(&"/country/economy/export_partners/item/trade_country".to_string()));
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn tag_name_keywords_are_indexed() {
        let (collection, index) = sample();
        // "percentage" never appears as content, only as a tag name; its
        // bucket must contain both import- and export-partner percentage
        // contexts (the paper's Query 1 relies on this).
        let bucket = index.context_bucket(&FullTextQuery::keywords("percentage"));
        let paths = path_strings(&collection, &bucket);
        assert!(paths.contains(&"/country/economy/import_partners/item/percentage".to_string()));
        assert!(paths.contains(&"/country/economy/export_partners/item/percentage".to_string()));
    }

    #[test]
    fn frequencies_are_absolute_path_counts() {
        let (collection, index) = sample();
        let bucket = index.context_bucket(&FullTextQuery::keywords("trade country"));
        // Export-partner trade_country occurs twice (US->Canada, Mexico->US),
        // import-partner trade_country once.
        let export: Vec<&PathEntry> = bucket
            .iter()
            .filter(|e| collection.path_string(e.path).contains("export_partners"))
            .collect();
        let import: Vec<&PathEntry> = bucket
            .iter()
            .filter(|e| collection.path_string(e.path).contains("import_partners"))
            .collect();
        assert_eq!(export[0].frequency, 2);
        assert_eq!(import[0].frequency, 1);
        // Sorted by descending frequency.
        assert!(bucket[0].frequency >= bucket[bucket.len() - 1].frequency);
    }

    #[test]
    fn match_all_bucket_contains_only_text_paths() {
        let (collection, index) = sample();
        let bucket = index.context_bucket(&FullTextQuery::Any);
        let paths = path_strings(&collection, &bucket);
        assert!(paths.contains(&"/country/year".to_string()));
        assert!(
            !paths.contains(&"/country/economy".to_string()),
            "interior structural nodes without text are not contexts for `*`"
        );
    }

    #[test]
    fn tag_filtered_bucket_restricts_to_leaf_name() {
        let (collection, index) = sample();
        let bucket =
            index.context_bucket_with_tag(&collection, &FullTextQuery::Any, "trade_country");
        let paths = path_strings(&collection, &bucket);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.ends_with("/trade_country")));
    }

    #[test]
    fn boolean_queries_combine_path_sets() {
        let (collection, index) = sample();
        let q = FullTextQuery::parse("china OR canada").unwrap();
        let bucket = index.context_bucket(&q);
        let paths = path_strings(&collection, &bucket);
        assert!(paths.iter().any(|p| p.contains("import_partners")));
        assert!(paths.iter().any(|p| p.contains("export_partners")));

        let not_q = FullTextQuery::parse("NOT china").unwrap();
        let bucket = index.context_bucket(&not_q);
        assert!(!path_strings(&collection, &bucket)
            .contains(&"/country/economy/import_partners/item/trade_country".to_string()));
    }

    #[test]
    fn both_count_storages_agree_on_buckets() {
        let (collection, _) = sample();
        let doc_store = ContextIndex::build(&collection, CountStorage::DocumentStore);
        let postings = ContextIndex::build(&collection, CountStorage::PostingLists);
        let q = FullTextQuery::phrase("united states");
        assert_eq!(doc_store.context_bucket(&q), postings.context_bucket(&q));
        // The posting-list design stores at least as many count entries.
        assert!(postings.count_entries() >= doc_store.count_entries());
    }

    #[test]
    fn merged_shards_equal_sequential_build_for_both_storages() {
        let (collection, _) = sample();
        for storage in [CountStorage::DocumentStore, CountStorage::PostingLists] {
            let sequential = ContextIndex::build(&collection, storage);
            let mut shards: Vec<ContextIndexShard> =
                collection.documents().map(|doc| ContextIndex::build_shard(doc, storage)).collect();
            shards.reverse(); // merge must not depend on shard order
            let merged = ContextIndex::merge(&collection, storage, shards);
            assert_eq!(merged, sequential);
        }
    }

    #[test]
    #[should_panic(expected = "cannot merge")]
    fn merge_rejects_mismatched_count_storage() {
        let (collection, _) = sample();
        let shards: Vec<ContextIndexShard> = collection
            .documents()
            .map(|doc| ContextIndex::build_shard(doc, CountStorage::DocumentStore))
            .collect();
        ContextIndex::merge(&collection, CountStorage::PostingLists, shards);
    }

    #[test]
    fn merge_of_no_shards_still_indexes_tag_names() {
        let (collection, _) = sample();
        let merged = ContextIndex::merge(&collection, CountStorage::DocumentStore, Vec::new());
        // Content keywords are missing without shards, but tag-name keywords
        // come from the shared path table.
        let bucket = merged.context_bucket(&FullTextQuery::keywords("percentage"));
        assert!(!bucket.is_empty());
    }

    #[test]
    fn statistics_accessors() {
        let (collection, index) = sample();
        assert_eq!(index.path_count(), collection.distinct_path_count());
        assert!(index.keyword_count() > 10);
        let name = collection.paths().get_str(collection.symbols(), "/country/name").unwrap();
        assert_eq!(index.path_frequency(name), 2);
        assert_eq!(index.path_document_frequency(name), 2);
    }
}
