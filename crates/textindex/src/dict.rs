//! Interned term dictionary for the node index read path.
//!
//! Query-time posting lookups used to hash full term strings on every access;
//! the dictionary interns every distinct term once at build/merge time so the
//! hot path works with dense [`TermId`]s and array indexing (the same move
//! FIB-compression work makes for name-based forwarding tables).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Dense identifier of an interned term.  Ids are assigned in lexicographic
/// term order at build time, so they are deterministic for a given corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// Raw index of the term in the dictionary.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional term ↔ id intern table.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermDict {
    pub(crate) ids: HashMap<String, TermId>,
    pub(crate) terms: Vec<String>,
}

impl TermDict {
    /// Builds the dictionary from a **sorted, deduplicated** term iterator,
    /// assigning ids in iteration order.
    pub fn from_sorted<'a>(terms: impl Iterator<Item = &'a str>) -> Self {
        let mut dict = TermDict::default();
        for term in terms {
            dict.intern(term);
        }
        dict
    }

    /// Interns a term, returning its id (existing id when already interned).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_string());
        self.ids.insert(term.to_string(), id);
        id
    }

    /// Id of a term, or `None` when the term is not in the dictionary.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// The term of an id.
    ///
    /// # Panics
    /// Panics when the id was not produced by this dictionary.
    pub fn resolve(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term is interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// All interned terms in id order.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms.iter().enumerate().map(|(i, t)| (TermId(i as u32), t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips() {
        let mut dict = TermDict::default();
        let a = dict.intern("alpha");
        let b = dict.intern("beta");
        assert_ne!(a, b);
        assert_eq!(dict.intern("alpha"), a, "re-interning returns the existing id");
        assert_eq!(dict.resolve(a), "alpha");
        assert_eq!(dict.resolve(b), "beta");
        assert_eq!(dict.get("alpha"), Some(a));
        assert_eq!(dict.get("gamma"), None);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn from_sorted_assigns_ids_in_order() {
        let terms = ["apple", "banana", "cherry"];
        let dict = TermDict::from_sorted(terms.iter().copied());
        for (i, term) in terms.iter().enumerate() {
            assert_eq!(dict.get(term), Some(TermId(i as u32)));
            assert_eq!(dict.resolve(TermId(i as u32)), *term);
        }
        let collected: Vec<&str> = dict.terms().map(|(_, t)| t).collect();
        assert_eq!(collected, terms);
    }

    #[test]
    fn empty_dict() {
        let dict = TermDict::default();
        assert!(dict.is_empty());
        assert_eq!(dict.len(), 0);
        assert_eq!(dict.get("anything"), None);
    }
}
