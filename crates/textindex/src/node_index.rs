//! Inverted index over node content.
//!
//! This is the index the top-k search unit (Sec. 4) reads: for every node that
//! carries text, the index stores a posting per term with term frequency and
//! positions.  It supports the two access paths the Threshold Algorithm needs:
//!
//! * **sorted access** — per-term posting lists ordered by descending content
//!   score, and
//! * **random access** — scoring an arbitrary `(query, node)` pair.
//!
//! Matches are attributed to the node that *directly* contains the text (the
//! deepest element or attribute), mirroring the paper's examples where
//! `"United States"` hits `country` and `trade_country` nodes rather than
//! every ancestor up to the document root.
//!
//! # Read model
//!
//! The build artifacts (`postings`, `node_tokens`, `node_paths`) are plain
//! maps, but the query path never touches them directly.  At the end of
//! [`NodeIndex::merge`] the index freezes an **interned read model**: terms
//! are interned into a [`TermDict`], per-term posting lists are stored in one
//! CSR arena **pre-sorted by descending content score** (idf folded in), and
//! a dense node side table carries each indexed node's context path and token
//! length for random access and path filtering.  [`NodeIndex::sorted_access`]
//! therefore returns a borrowed slice — no per-query sort, no per-query
//! allocation — and [`NodeIndex::evaluate_into`] scores into caller-owned
//! buffers.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, DocId, Document, NodeId, PathId};

use crate::dict::{TermDict, TermId};
use crate::query::FullTextQuery;
use crate::tokenize::{terms, tokenize};

/// One posting: a node containing a term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Posting {
    /// Node containing the term.
    pub node: NodeId,
    /// Number of occurrences of the term in the node's direct text.
    pub tf: u32,
    /// Token positions of the occurrences (for phrase verification).
    pub positions: Vec<u32>,
}

/// A node matched by a query, with its content score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredNode {
    /// The matching node.
    pub node: NodeId,
    /// Content score (tf-idf, length-normalised); higher is better.
    pub score: f64,
}

/// Inverted full-text index over the direct text content of nodes.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeIndex {
    pub(crate) postings: HashMap<String, Vec<Posting>>,
    /// Tokenised direct text of every indexed node (random access / phrase
    /// verification).
    pub(crate) node_tokens: HashMap<NodeId, Vec<String>>,
    /// Context path of every indexed node (context filtering).
    pub(crate) node_paths: HashMap<NodeId, PathId>,
    pub(crate) indexed_nodes: usize,

    // ---- interned read model, frozen by `rebuild_read_model` ----
    /// Term intern table; ids are lexicographic ranks, so deterministic.
    pub(crate) dict: TermDict,
    /// Smoothed idf per term id.
    pub(crate) idf_by_term: Vec<f64>,
    /// CSR offsets into `sorted_postings`, length `dict.len() + 1`.
    pub(crate) posting_offsets: Vec<u32>,
    /// Per-term postings pre-sorted by (score desc, node asc), idf folded in.
    pub(crate) sorted_postings: Vec<ScoredNode>,
    /// Dense slot of every indexed node (slots in ascending `NodeId` order).
    pub(crate) node_slots: HashMap<NodeId, u32>,
    /// Slot → node id.
    pub(crate) slot_nodes: Vec<NodeId>,
    /// Slot → context path (side table for path filtering).
    pub(crate) slot_paths: Vec<PathId>,
    /// Slot → token count (side table for length normalisation).
    pub(crate) slot_token_counts: Vec<u32>,
}

/// Partial node index over a single document, produced by
/// [`NodeIndex::build_shard`] and consumed by [`NodeIndex::merge`].
///
/// Shards carry globally valid [`NodeId`]s and [`PathId`]s because documents
/// of a [`Collection`] share its symbol and path intern tables, so merging is
/// a plain k-way union with no id remapping.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeIndexShard {
    doc: Option<DocId>,
    postings: HashMap<String, Vec<Posting>>,
    node_tokens: HashMap<NodeId, Vec<String>>,
    node_paths: HashMap<NodeId, PathId>,
    indexed_nodes: usize,
}

impl NodeIndexShard {
    /// The document this shard was built from.
    pub fn doc(&self) -> Option<DocId> {
        self.doc
    }

    /// Number of nodes with indexed content in this shard.
    pub fn indexed_node_count(&self) -> usize {
        self.indexed_nodes
    }
}

impl NodeIndex {
    /// Builds the index over every node of the collection that has direct
    /// text content (elements with text and attributes).
    ///
    /// This is the sequential reference path; it is equivalent to building
    /// one shard per document with [`NodeIndex::build_shard`] and combining
    /// them with [`NodeIndex::merge`].
    pub fn build(collection: &Collection) -> Self {
        Self::merge(collection.documents().map(Self::build_shard).collect())
    }

    /// Builds the partial index of a single document (the per-shard phase of
    /// the shard → merge build lifecycle).
    pub fn build_shard(doc: &Document) -> NodeIndexShard {
        let mut shard = NodeIndexShard { doc: Some(doc.id), ..NodeIndexShard::default() };
        for (ordinal, node) in doc.iter() {
            let Some(text) = node.text.as_deref() else { continue };
            let tokens = tokenize(text);
            if tokens.is_empty() {
                continue;
            }
            let node_id = NodeId::new(doc.id, ordinal);
            let mut tfs: HashMap<&str, (u32, Vec<u32>)> = HashMap::new();
            for token in &tokens {
                let entry = tfs.entry(token.text.as_str()).or_insert((0, Vec::new()));
                entry.0 += 1;
                entry.1.push(token.position);
            }
            for (term, (tf, positions)) in tfs {
                shard.postings.entry(term.to_string()).or_default().push(Posting {
                    node: node_id,
                    tf,
                    positions,
                });
            }
            shard.node_tokens.insert(node_id, tokens.into_iter().map(|t| t.text).collect());
            shard.node_paths.insert(node_id, node.path);
            shard.indexed_nodes += 1;
        }
        shard
    }

    /// Merges per-document shards into the full index (the merge phase of the
    /// shard → merge build lifecycle) and freezes the interned read model.
    ///
    /// Shards are merged in ascending document order regardless of the order
    /// they are passed in, so the result is deterministic and identical to
    /// the sequential [`NodeIndex::build`].
    pub fn merge(mut shards: Vec<NodeIndexShard>) -> Self {
        shards.sort_by_key(|s| s.doc);
        let mut index = NodeIndex::default();
        for shard in shards {
            for (term, postings) in shard.postings {
                index.postings.entry(term).or_default().extend(postings);
            }
            index.node_tokens.extend(shard.node_tokens);
            index.node_paths.extend(shard.node_paths);
            index.indexed_nodes += shard.indexed_nodes;
        }
        // Per-term posting lists are concatenated in document order; keep them
        // sorted by node id for deterministic iteration.
        for postings in index.postings.values_mut() {
            postings.sort_by_key(|p| p.node);
        }
        index.rebuild_read_model();
        index
    }

    /// Freezes the interned read model from the merged build artifacts: the
    /// term dictionary, idf table, score-sorted posting arena and the node
    /// side table.
    fn rebuild_read_model(&mut self) {
        let mut terms: Vec<&str> = self.postings.keys().map(String::as_str).collect();
        terms.sort_unstable();
        self.dict = TermDict::from_sorted(terms.into_iter());

        let mut nodes: Vec<NodeId> = self.node_tokens.keys().copied().collect();
        nodes.sort_unstable();
        self.node_slots = nodes.iter().enumerate().map(|(i, &n)| (n, i as u32)).collect();
        self.slot_paths = nodes.iter().map(|n| self.node_paths[n]).collect();
        self.slot_token_counts = nodes.iter().map(|n| self.node_tokens[n].len() as u32).collect();
        self.slot_nodes = nodes;

        self.idf_by_term = Vec::with_capacity(self.dict.len());
        self.posting_offsets = Vec::with_capacity(self.dict.len() + 1);
        self.posting_offsets.push(0);
        self.sorted_postings.clear();
        // Collecting term ids first keeps the borrow checker happy while we
        // push into the posting arena below.
        for id in 0..self.dict.len() as u32 {
            let term = self.dict.resolve(TermId(id)).to_string();
            let idf = self.idf(&term);
            self.idf_by_term.push(idf);
            let start = self.sorted_postings.len();
            for posting in &self.postings[&term] {
                let len =
                    (self.node_tokens.get(&posting.node).map(Vec::len).unwrap_or(1).max(1)) as f64;
                let score = (posting.tf as f64) * idf / len.sqrt();
                self.sorted_postings.push(ScoredNode { node: posting.node, score });
            }
            self.sorted_postings[start..].sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.node.cmp(&b.node))
            });
            self.posting_offsets.push(self.sorted_postings.len() as u32);
        }
    }

    /// Number of nodes with indexed content.
    pub fn indexed_node_count(&self) -> usize {
        self.indexed_nodes
    }

    /// Number of distinct terms in the index.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// The interned term dictionary of the read model.
    pub fn term_dict(&self) -> &TermDict {
        &self.dict
    }

    /// Document frequency of a term (number of nodes containing it).
    pub fn document_frequency(&self, term: &str) -> usize {
        self.postings.get(term).map(Vec::len).unwrap_or(0)
    }

    /// Inverse document frequency with the usual smoothing.
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.document_frequency(term);
        ((1.0 + self.indexed_nodes as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// The context path of an indexed node.
    pub fn node_path(&self, node: NodeId) -> Option<PathId> {
        self.node_paths.get(&node).copied()
    }

    /// The read-model side table entry of an indexed node: its context path
    /// and token count (the inputs of path filtering and length
    /// normalisation), or `None` for nodes without indexed content.
    pub fn node_entry(&self, node: NodeId) -> Option<(PathId, u32)> {
        let slot = *self.node_slots.get(&node)? as usize;
        Some((self.slot_paths[slot], self.slot_token_counts[slot]))
    }

    /// The tokenised direct text of an indexed node.
    pub fn node_tokens(&self, node: NodeId) -> Option<&[String]> {
        self.node_tokens.get(&node).map(Vec::as_slice)
    }

    /// tf-idf content score of a single term for a node, length-normalised.
    fn term_score(&self, term: &str, node: NodeId, tf: u32) -> f64 {
        let len = self.node_tokens.get(&node).map(Vec::len).unwrap_or(1).max(1) as f64;
        (tf as f64) * self.interned_idf(term) / len.sqrt()
    }

    /// idf via the precomputed per-term table, falling back to the formula
    /// for terms outside the dictionary (df = 0, so the value only matters
    /// for the smoothing constant).
    fn interned_idf(&self, term: &str) -> f64 {
        match self.dict.get(term) {
            Some(id) => self.idf_by_term[id.index()],
            None => self.idf(term),
        }
    }

    /// Content score of `query` for `node`, or `None` when the node does not
    /// satisfy the query (random access for the Threshold Algorithm).
    pub fn score(&self, query: &FullTextQuery, node: NodeId) -> Option<f64> {
        let tokens = self.node_tokens.get(&node)?;
        if !query.matches_tokens(tokens) {
            return None;
        }
        Some(self.score_unchecked(query, node, tokens))
    }

    fn score_unchecked(&self, query: &FullTextQuery, node: NodeId, tokens: &[String]) -> f64 {
        let positive = query.positive_terms();
        if positive.is_empty() {
            // Match-all queries (`*`): every node scores equally; use a small
            // constant so structural compactness dominates the combined score.
            return 1.0 / (tokens.len() as f64).sqrt().max(1.0);
        }
        positive
            .iter()
            .map(|term| {
                let tf = tokens.iter().filter(|t| *t == term).count() as u32;
                if tf == 0 {
                    0.0
                } else {
                    self.term_score(term, node, tf)
                }
            })
            .sum()
    }

    /// All nodes satisfying the query, scored, in descending score order
    /// (ties broken by node id for determinism).
    pub fn evaluate(&self, query: &FullTextQuery) -> Vec<ScoredNode> {
        let mut out = Vec::new();
        self.evaluate_into(query, None, &mut Vec::new(), &mut out);
        out
    }

    /// Like [`NodeIndex::evaluate`] but restricted to nodes whose context path
    /// satisfies `allowed` (used after the user picks contexts in the context
    /// summary).
    pub fn evaluate_in_paths(&self, query: &FullTextQuery, allowed: &[PathId]) -> Vec<ScoredNode> {
        let mut out = Vec::new();
        self.evaluate_into(query, Some(allowed), &mut Vec::new(), &mut out);
        out
    }

    /// Evaluates `query` into caller-owned buffers (the allocation-free form
    /// backing [`NodeIndex::evaluate`]): `out` receives the scored matches in
    /// descending score order (ties broken by node id), `candidates` is an
    /// internal scratch buffer.  Both are cleared first; reusing them across
    /// queries keeps the read path free of per-query allocations.
    pub fn evaluate_into(
        &self,
        query: &FullTextQuery,
        allowed: Option<&[PathId]>,
        candidates: &mut Vec<NodeId>,
        out: &mut Vec<ScoredNode>,
    ) {
        out.clear();
        candidates.clear();
        let path_ok = |slot: usize| match allowed {
            Some(paths) => paths.contains(&self.slot_paths[slot]),
            None => true,
        };

        // Fast path: a single-term keyword (or single-token phrase) query is
        // exactly one pre-sorted posting list — copy the borrowed slice out,
        // filtered by path, with no re-scoring and no sort.
        if let Some(term) = query.single_positive_term() {
            let Some(id) = self.dict.get(term) else { return };
            for scored in self.sorted_access_by_id(id) {
                let slot = self.node_slots[&scored.node] as usize;
                if path_ok(slot) {
                    out.push(*scored);
                }
            }
            return;
        }

        if query.is_match_all() || query.positive_terms().is_empty() {
            // Match-all or pure-negation queries must consider every indexed
            // node; slots are already in ascending node order.
            candidates.extend(self.slot_nodes.iter().copied());
        } else {
            for term in query.positive_terms() {
                if let Some(id) = self.dict.get(&term) {
                    candidates.extend(self.sorted_access_by_id(id).iter().map(|s| s.node));
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
        }

        for &node in candidates.iter() {
            let slot = self.node_slots[&node] as usize;
            if !path_ok(slot) {
                continue;
            }
            let tokens = &self.node_tokens[&node];
            if query.matches_tokens(tokens) {
                out.push(ScoredNode { node, score: self.score_unchecked(query, node, tokens) });
            }
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.cmp(&b.node))
        });
    }

    /// Per-term sorted access for the Threshold Algorithm: postings of `term`
    /// ordered by descending single-term score, as a borrowed slice of the
    /// pre-sorted posting arena (no per-query work).
    pub fn sorted_access(&self, term: &str) -> &[ScoredNode] {
        match self.dict.get(term) {
            Some(id) => self.sorted_access_by_id(id),
            None => &[],
        }
    }

    /// [`NodeIndex::sorted_access`] by interned term id.
    pub fn sorted_access_by_id(&self, id: TermId) -> &[ScoredNode] {
        let i = id.index();
        &self.sorted_postings
            [self.posting_offsets[i] as usize..self.posting_offsets[i + 1] as usize]
    }

    /// Convenience wrapper: evaluate a keyword string.
    pub fn search(&self, keywords: &str) -> Vec<ScoredNode> {
        self.evaluate(&FullTextQuery::Keywords(terms(keywords)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::parse_collection;

    fn sample() -> (Collection, NodeIndex) {
        let docs = vec![
            (
                "us.xml",
                r#"<country><name>United States</name><year>2006</year>
                   <economy><GDP_ppp>12.31T</GDP_ppp>
                     <import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                       <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                     </import_partners>
                   </economy></country>"#,
            ),
            (
                "mexico.xml",
                r#"<country><name>Mexico</name><year>2003</year>
                   <economy><GDP>924.4B</GDP>
                     <export_partners>
                       <item><trade_country>United States</trade_country><percentage>70.6</percentage></item>
                     </export_partners>
                   </economy></country>"#,
            ),
        ];
        let collection = parse_collection(docs).unwrap();
        let index = NodeIndex::build(&collection);
        (collection, index)
    }

    #[test]
    fn phrase_query_finds_both_contexts() {
        let (collection, index) = sample();
        let results = index.evaluate(&FullTextQuery::phrase("United States"));
        assert_eq!(results.len(), 2);
        let contexts: Vec<String> =
            results.iter().map(|r| collection.context_string(r.node).unwrap()).collect();
        assert!(contexts.contains(&"/country/name".to_string()));
        assert!(
            contexts.contains(&"/country/economy/export_partners/item/trade_country".to_string())
        );
    }

    #[test]
    fn keyword_query_is_conjunctive() {
        let (_, index) = sample();
        assert_eq!(index.search("united states").len(), 2);
        assert_eq!(index.search("united kingdom").len(), 0);
    }

    #[test]
    fn rarer_terms_score_higher() {
        let (_, index) = sample();
        // "china" occurs once; "country" does not occur in content at all;
        // "united" occurs twice. A node matching the rarer term should score
        // at least as high per-term.
        assert!(index.idf("china") > index.idf("united"));
    }

    #[test]
    fn random_access_scores_match_evaluate() {
        let (_, index) = sample();
        let query = FullTextQuery::phrase("united states");
        for hit in index.evaluate(&query) {
            let direct = index.score(&query, hit.node).unwrap();
            assert!((direct - hit.score).abs() < 1e-12);
        }
    }

    #[test]
    fn random_access_returns_none_for_non_matching_nodes() {
        let (_, index) = sample();
        let query = FullTextQuery::keywords("china");
        let canada_hits = index.search("canada");
        assert_eq!(canada_hits.len(), 1);
        assert!(index.score(&query, canada_hits[0].node).is_none());
    }

    #[test]
    fn sorted_access_is_descending() {
        let (_, index) = sample();
        let postings = index.sorted_access("united");
        assert_eq!(postings.len(), 2);
        assert!(postings[0].score >= postings[1].score);
        assert!(index.sorted_access("nonexistent").is_empty());
    }

    #[test]
    fn sorted_access_scores_match_term_scores() {
        let (_, index) = sample();
        for (id, term) in index.term_dict().terms() {
            let by_name = index.sorted_access(term);
            let by_id = index.sorted_access_by_id(id);
            assert_eq!(by_name, by_id);
            assert!(!by_name.is_empty(), "every interned term has postings");
            for w in by_name.windows(2) {
                assert!(
                    w[0].score > w[1].score || (w[0].score == w[1].score && w[0].node < w[1].node),
                    "postings of {term:?} must be sorted by (score desc, node asc)"
                );
            }
            // Precomputed scores agree with the on-demand scoring formula.
            for scored in by_name {
                let query = FullTextQuery::Keywords(vec![term.to_string()]);
                let direct = index.score(&query, scored.node).unwrap();
                assert!((direct - scored.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dictionary_round_trips_through_the_index() {
        let (_, index) = sample();
        assert_eq!(index.term_dict().len(), index.term_count());
        for (id, term) in index.term_dict().terms() {
            assert_eq!(index.term_dict().get(term), Some(id));
            assert_eq!(index.term_dict().resolve(id), term);
        }
        assert!(index.term_dict().get("zzz-not-a-term").is_none());
    }

    #[test]
    fn node_side_table_reports_paths_and_lengths() {
        let (collection, index) = sample();
        let hits = index.search("china");
        assert_eq!(hits.len(), 1);
        let (path, len) = index.node_entry(hits[0].node).unwrap();
        assert_eq!(
            collection.path_string(path),
            "/country/economy/import_partners/item/trade_country"
        );
        assert_eq!(len, 1, "\"China\" tokenises to one token");
        assert_eq!(index.node_path(hits[0].node), Some(path));
        assert!(index.node_entry(NodeId::new(DocId(9), 9)).is_none());
    }

    #[test]
    fn evaluate_into_reuses_buffers() {
        let (_, index) = sample();
        let mut candidates = Vec::new();
        let mut out = Vec::new();
        for query in [
            FullTextQuery::phrase("united states"),
            FullTextQuery::keywords("china"),
            FullTextQuery::Any,
            FullTextQuery::parse("china OR canada").unwrap(),
        ] {
            index.evaluate_into(&query, None, &mut candidates, &mut out);
            assert_eq!(out, index.evaluate(&query), "buffered evaluate diverged for {query:?}");
        }
    }

    #[test]
    fn match_all_returns_every_indexed_node() {
        let (_, index) = sample();
        let all = index.evaluate(&FullTextQuery::Any);
        assert_eq!(all.len(), index.indexed_node_count());
    }

    #[test]
    fn path_filtering_restricts_results() {
        let (collection, index) = sample();
        let name_path = collection.paths().get_str(collection.symbols(), "/country/name").unwrap();
        let results =
            index.evaluate_in_paths(&FullTextQuery::phrase("united states"), &[name_path]);
        assert_eq!(results.len(), 1);
        assert_eq!(collection.context_string(results[0].node).unwrap(), "/country/name");
    }

    #[test]
    fn single_term_path_filtering_uses_the_fast_path() {
        let (collection, index) = sample();
        let name_path = collection.paths().get_str(collection.symbols(), "/country/name").unwrap();
        // Single-keyword queries take the borrowed fast path; path filtering
        // must still apply.
        let results = index.evaluate_in_paths(&FullTextQuery::keywords("united"), &[name_path]);
        assert_eq!(results.len(), 1);
        assert_eq!(collection.context_string(results[0].node).unwrap(), "/country/name");
    }

    #[test]
    fn numeric_content_is_searchable() {
        let (collection, index) = sample();
        let hits = index.search("16.9");
        assert_eq!(hits.len(), 1);
        assert_eq!(
            collection.context_string(hits[0].node).unwrap(),
            "/country/economy/import_partners/item/percentage"
        );
    }

    #[test]
    fn boolean_query_evaluation() {
        let (_, index) = sample();
        let q = FullTextQuery::parse("china OR canada").unwrap();
        assert_eq!(index.evaluate(&q).len(), 2);
        let q = FullTextQuery::parse("\"united states\" AND NOT mexico").unwrap();
        assert_eq!(index.evaluate(&q).len(), 2, "negation applies to node content, not documents");
    }

    #[test]
    fn merged_shards_equal_sequential_build() {
        let (collection, sequential) = sample();
        let shards: Vec<NodeIndexShard> =
            collection.documents().map(NodeIndex::build_shard).collect();
        assert_eq!(shards.len(), 2);
        assert!(shards.iter().all(|s| s.doc().is_some()));
        let merged = NodeIndex::merge(shards);
        assert_eq!(merged, sequential);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let (collection, sequential) = sample();
        let mut shards: Vec<NodeIndexShard> =
            collection.documents().map(NodeIndex::build_shard).collect();
        shards.reverse();
        assert_eq!(NodeIndex::merge(shards), sequential);
    }

    #[test]
    fn merge_of_no_shards_is_empty() {
        let merged = NodeIndex::merge(Vec::new());
        assert_eq!(merged.indexed_node_count(), 0);
        assert_eq!(merged.term_count(), 0);
        assert!(merged.term_dict().is_empty());
        assert!(merged.evaluate(&FullTextQuery::Any).is_empty());
    }

    #[test]
    fn term_statistics() {
        let (_, index) = sample();
        assert!(index.term_count() > 10);
        assert_eq!(index.document_frequency("china"), 1);
        assert_eq!(index.document_frequency("united"), 2);
        assert_eq!(index.document_frequency("missing"), 0);
    }
}
