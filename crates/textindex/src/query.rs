//! Full-text search expressions.
//!
//! Definition 3 of the paper allows the `search_query` component of a query
//! term to be "a simple bag of keywords, a phrase query or a boolean
//! combination of those".  [`FullTextQuery`] models exactly that, plus the
//! wildcard `*` used throughout the paper's examples (`(trade_country, ∗)`).

use serde::{Deserialize, Serialize};

use crate::tokenize::terms;

/// A full-text search expression over node content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FullTextQuery {
    /// `*` — matches every node that has any text content.
    Any,
    /// Bag of keywords; all keywords must occur in the node content
    /// (conjunctive semantics, order-insensitive).
    Keywords(Vec<String>),
    /// Phrase: the keywords must occur consecutively, in order.
    Phrase(Vec<String>),
    /// Both sub-queries must match.
    And(Box<FullTextQuery>, Box<FullTextQuery>),
    /// At least one sub-query must match.
    Or(Box<FullTextQuery>, Box<FullTextQuery>),
    /// The sub-query must not match.
    Not(Box<FullTextQuery>),
}

impl FullTextQuery {
    /// Builds a keyword query from free text.
    pub fn keywords(text: &str) -> Self {
        FullTextQuery::Keywords(terms(text))
    }

    /// Builds a phrase query from free text.
    pub fn phrase(text: &str) -> Self {
        FullTextQuery::Phrase(terms(text))
    }

    /// All positive terms mentioned anywhere in the query (used to select
    /// posting lists; negated terms are excluded).
    pub fn positive_terms(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_terms(&mut out, true);
        out.sort();
        out.dedup();
        out
    }

    fn collect_terms(&self, out: &mut Vec<String>, positive: bool) {
        match self {
            FullTextQuery::Any => {}
            FullTextQuery::Keywords(ts) | FullTextQuery::Phrase(ts) => {
                if positive {
                    out.extend(ts.iter().cloned());
                }
            }
            FullTextQuery::And(a, b) | FullTextQuery::Or(a, b) => {
                a.collect_terms(out, positive);
                b.collect_terms(out, positive);
            }
            FullTextQuery::Not(inner) => inner.collect_terms(out, !positive),
        }
    }

    /// The query's single positive term, when the whole query is exactly one
    /// keyword (or a one-token phrase, which is equivalent).  Such queries
    /// are satisfied by precisely the nodes on the term's posting list, so
    /// the index can answer them from the pre-sorted postings alone.
    pub fn single_positive_term(&self) -> Option<&str> {
        match self {
            FullTextQuery::Keywords(ts) | FullTextQuery::Phrase(ts) if ts.len() == 1 => {
                Some(&ts[0])
            }
            _ => None,
        }
    }

    /// True for queries that match every node with content (`*` or an empty
    /// keyword list).
    pub fn is_match_all(&self) -> bool {
        match self {
            FullTextQuery::Any => true,
            FullTextQuery::Keywords(ts) | FullTextQuery::Phrase(ts) => ts.is_empty(),
            _ => false,
        }
    }

    /// Evaluates the query against a tokenised content string.
    pub fn matches_tokens(&self, tokens: &[String]) -> bool {
        match self {
            FullTextQuery::Any => true,
            FullTextQuery::Keywords(ts) => ts.iter().all(|t| tokens.iter().any(|tok| tok == t)),
            FullTextQuery::Phrase(ts) => {
                if ts.is_empty() {
                    return true;
                }
                if tokens.len() < ts.len() {
                    return false;
                }
                tokens.windows(ts.len()).any(|w| w.iter().zip(ts).all(|(a, b)| a == b))
            }
            FullTextQuery::And(a, b) => a.matches_tokens(tokens) && b.matches_tokens(tokens),
            FullTextQuery::Or(a, b) => a.matches_tokens(tokens) || b.matches_tokens(tokens),
            FullTextQuery::Not(inner) => !inner.matches_tokens(tokens),
        }
    }

    /// Evaluates the query against raw text (tokenising it first).
    pub fn matches_text(&self, text: &str) -> bool {
        self.matches_tokens(&terms(text))
    }

    /// Parses the textual search-query syntax used by examples and tests:
    ///
    /// * `*` — match-all,
    /// * `"quoted text"` — phrase,
    /// * bare words — keyword bag,
    /// * `AND`, `OR`, `NOT` (case-insensitive) and parentheses for boolean
    ///   combinations; `AND` binds tighter than `OR`.
    pub fn parse(input: &str) -> Result<Self, QueryParseError> {
        let tokens = lex(input)?;
        let mut parser = Parser { tokens, pos: 0 };
        let query = parser.parse_or()?;
        if parser.pos != parser.tokens.len() {
            return Err(QueryParseError::new(format!(
                "unexpected trailing input at token {}",
                parser.pos
            )));
        }
        Ok(query)
    }
}

impl std::fmt::Display for FullTextQuery {
    /// Renders the query in the textual syntax accepted by
    /// [`FullTextQuery::parse`], so `parse(&q.to_string())` reproduces `q`
    /// for every non-degenerate query (empty keyword/phrase lists render as
    /// the equivalent `*`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FullTextQuery::Any => write!(f, "*"),
            FullTextQuery::Keywords(ts) if ts.is_empty() => write!(f, "*"),
            FullTextQuery::Keywords(ts) => write!(f, "{}", ts.join(" ")),
            FullTextQuery::Phrase(ts) if ts.is_empty() => write!(f, "*"),
            FullTextQuery::Phrase(ts) => write!(f, "\"{}\"", ts.join(" ")),
            FullTextQuery::And(a, b) => write!(f, "({a} AND {b})"),
            FullTextQuery::Or(a, b) => write!(f, "({a} OR {b})"),
            FullTextQuery::Not(inner) => write!(f, "(NOT {inner})"),
        }
    }
}

/// Error produced when a search-query string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    message: String,
}

impl QueryParseError {
    fn new(message: impl Into<String>) -> Self {
        QueryParseError { message: message.into() }
    }
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for QueryParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Lexeme {
    Word(String),
    Phrase(String),
    Star,
    LParen,
    RParen,
    And,
    Or,
    Not,
}

fn lex(input: &str) -> Result<Vec<Lexeme>, QueryParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Lexeme::LParen);
            }
            ')' => {
                chars.next();
                out.push(Lexeme::RParen);
            }
            '*' => {
                chars.next();
                out.push(Lexeme::Star);
            }
            '"' => {
                chars.next();
                let mut phrase = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    phrase.push(c);
                }
                if !closed {
                    return Err(QueryParseError::new("unterminated phrase quote"));
                }
                out.push(Lexeme::Phrase(phrase));
            }
            _ => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || c == '(' || c == ')' || c == '"' || c == '*' {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                match word.to_ascii_uppercase().as_str() {
                    "AND" => out.push(Lexeme::And),
                    "OR" => out.push(Lexeme::Or),
                    "NOT" => out.push(Lexeme::Not),
                    _ => out.push(Lexeme::Word(word)),
                }
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Lexeme>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Lexeme> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Lexeme> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_or(&mut self) -> Result<FullTextQuery, QueryParseError> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Some(Lexeme::Or)) {
            self.next();
            let right = self.parse_and()?;
            left = FullTextQuery::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<FullTextQuery, QueryParseError> {
        let mut left = self.parse_unary()?;
        while matches!(self.peek(), Some(Lexeme::And)) {
            self.next();
            let right = self.parse_unary()?;
            left = FullTextQuery::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<FullTextQuery, QueryParseError> {
        if matches!(self.peek(), Some(Lexeme::Not)) {
            self.next();
            let inner = self.parse_unary()?;
            return Ok(FullTextQuery::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<FullTextQuery, QueryParseError> {
        match self.next() {
            Some(Lexeme::Star) => Ok(FullTextQuery::Any),
            Some(Lexeme::Phrase(p)) => Ok(FullTextQuery::phrase(&p)),
            Some(Lexeme::Word(w)) => {
                // Greedily absorb subsequent bare words into one keyword bag.
                let mut words = vec![w];
                while let Some(Lexeme::Word(next)) = self.peek() {
                    words.push(next.clone());
                    self.pos += 1;
                }
                Ok(FullTextQuery::Keywords(words.iter().flat_map(|w| terms(w)).collect()))
            }
            Some(Lexeme::LParen) => {
                let inner = self.parse_or()?;
                match self.next() {
                    Some(Lexeme::RParen) => Ok(inner),
                    _ => Err(QueryParseError::new("expected closing parenthesis")),
                }
            }
            other => Err(QueryParseError::new(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_bag_requires_all_terms() {
        let q = FullTextQuery::keywords("United States");
        assert!(q.matches_text("the united states of america"));
        assert!(!q.matches_text("united kingdom"));
    }

    #[test]
    fn phrase_requires_adjacency_and_order() {
        let q = FullTextQuery::phrase("United States");
        assert!(q.matches_text("trade partners of the United States"));
        assert!(!q.matches_text("united arab emirates and other states"));
        assert!(!q.matches_text("states united"));
    }

    #[test]
    fn any_matches_everything() {
        assert!(FullTextQuery::Any.matches_text("anything"));
        assert!(FullTextQuery::Any.is_match_all());
    }

    #[test]
    fn boolean_combinations() {
        let q = FullTextQuery::And(
            Box::new(FullTextQuery::keywords("import")),
            Box::new(FullTextQuery::Not(Box::new(FullTextQuery::keywords("export")))),
        );
        assert!(q.matches_text("import partners"));
        assert!(!q.matches_text("import and export partners"));
    }

    #[test]
    fn parse_star() {
        assert_eq!(FullTextQuery::parse("*").unwrap(), FullTextQuery::Any);
    }

    #[test]
    fn parse_phrase_and_keywords() {
        assert_eq!(
            FullTextQuery::parse("\"United States\"").unwrap(),
            FullTextQuery::Phrase(vec!["united".into(), "states".into()])
        );
        assert_eq!(
            FullTextQuery::parse("import partners").unwrap(),
            FullTextQuery::Keywords(vec!["import".into(), "partners".into()])
        );
    }

    #[test]
    fn parse_boolean_precedence() {
        // AND binds tighter than OR.
        let q = FullTextQuery::parse("china OR canada AND mexico").unwrap();
        match q {
            FullTextQuery::Or(left, right) => {
                assert_eq!(*left, FullTextQuery::Keywords(vec!["china".into()]));
                assert!(matches!(*right, FullTextQuery::And(_, _)));
            }
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn parse_parentheses_and_not() {
        let q = FullTextQuery::parse("(china OR canada) AND NOT mexico").unwrap();
        assert!(q.matches_text("china trade"));
        assert!(!q.matches_text("china mexico trade"));
        assert!(q.matches_text("canada"));
        assert!(!q.matches_text("brazil"));
    }

    #[test]
    fn parse_errors() {
        assert!(FullTextQuery::parse("\"unterminated").is_err());
        assert!(FullTextQuery::parse("(a OR b").is_err());
        assert!(FullTextQuery::parse("a ) b").is_err());
    }

    #[test]
    fn positive_terms_exclude_negations() {
        let q = FullTextQuery::parse("import AND NOT export").unwrap();
        assert_eq!(q.positive_terms(), vec!["import".to_string()]);
    }

    #[test]
    fn match_all_detection() {
        assert!(FullTextQuery::Keywords(vec![]).is_match_all());
        assert!(!FullTextQuery::keywords("x").is_match_all());
    }

    #[test]
    fn display_renders_reparseable_text() {
        for text in [
            "*",
            "china canada",
            "\"united states\"",
            "(china OR canada) AND NOT mexico",
            "(NOT (a AND b)) OR \"c d\"",
        ] {
            let parsed = FullTextQuery::parse(text).unwrap();
            let rendered = parsed.to_string();
            assert_eq!(
                FullTextQuery::parse(&rendered).unwrap(),
                parsed,
                "display of {text:?} must reparse to the same query (got {rendered:?})"
            );
        }
        // Degenerate empty bags render as the equivalent match-all.
        assert_eq!(FullTextQuery::Keywords(vec![]).to_string(), "*");
        assert_eq!(FullTextQuery::Phrase(vec![]).to_string(), "*");
    }
}
