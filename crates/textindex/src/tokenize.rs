//! Tokenisation of XML text content and query strings.
//!
//! SEDA's full-text indexes (node postings and the keyword→path context index
//! of Fig. 8) share one tokenizer so that query keywords and indexed content
//! agree on term boundaries.  Tokens are lower-cased alphanumeric runs;
//! punctuation separates tokens; decimal numbers such as `16.9` are kept as a
//! single token because percentages and monetary values (`12.31T`) are
//! first-class content in the Factbook corpus.

/// A token together with its ordinal position within the tokenised text
/// (positions support phrase queries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalised (lower-case) token text.
    pub text: String,
    /// 0-based position of the token in its source text.
    pub position: u32,
}

/// Splits text into normalised tokens.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut position = 0u32;
    let mut chars = text.chars().peekable();

    while let Some(c) = chars.next() {
        if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if c == '.' && !current.is_empty() && current.chars().all(|c| c.is_ascii_digit()) {
            // Keep decimal points inside numbers ("16.9", "12.31") but only if
            // a digit follows; a trailing period ends the token.
            if chars.peek().map(|n| n.is_ascii_digit()).unwrap_or(false) {
                current.push('.');
            } else {
                flush(&mut tokens, &mut current, &mut position);
            }
        } else {
            flush(&mut tokens, &mut current, &mut position);
        }
    }
    flush(&mut tokens, &mut current, &mut position);
    tokens
}

fn flush(tokens: &mut Vec<Token>, current: &mut String, position: &mut u32) {
    if !current.is_empty() {
        tokens.push(Token { text: std::mem::take(current), position: *position });
        *position += 1;
    }
}

/// Convenience: tokenised text as plain strings (used for query keywords,
/// where positions are irrelevant).
pub fn terms(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits_on_whitespace() {
        assert_eq!(terms("United States"), vec!["united", "states"]);
    }

    #[test]
    fn punctuation_separates_tokens() {
        assert_eq!(terms("import-partners, 2006"), vec!["import", "partners", "2006"]);
    }

    #[test]
    fn decimal_numbers_stay_together() {
        assert_eq!(terms("16.9%"), vec!["16.9"]);
        assert_eq!(terms("GDP 12.31T"), vec!["gdp", "12.31t"]);
    }

    #[test]
    fn trailing_period_is_dropped() {
        assert_eq!(terms("China."), vec!["china"]);
        assert_eq!(terms("15."), vec!["15"]);
    }

    #[test]
    fn positions_are_sequential() {
        let tokens = tokenize("trade partners of the United States");
        let positions: Vec<u32> = tokens.iter().map(|t| t.position).collect();
        assert_eq!(positions, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_and_symbol_only_text_has_no_tokens() {
        assert!(terms("").is_empty());
        assert!(terms("--- %% !!").is_empty());
    }

    #[test]
    fn unicode_text_is_handled() {
        assert_eq!(terms("Côte d'Ivoire"), vec!["côte", "d", "ivoire"]);
        assert_eq!(terms("北京 2006"), vec!["北京", "2006"]);
    }

    #[test]
    fn underscores_separate_tokens() {
        // Tag names such as `trade_country` tokenize into their words so a
        // keyword query for "country" also hits the tag vocabulary.
        assert_eq!(terms("trade_country"), vec!["trade", "country"]);
    }
}
