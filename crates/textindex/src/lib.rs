//! # seda-textindex
//!
//! Full-text indexing for SEDA, replacing the Lucene indexes of the paper's
//! prototype:
//!
//! * [`NodeIndex`] — an inverted index over node content with sorted and
//!   random access, consumed by the Threshold-Algorithm top-k search unit;
//! * [`ContextIndex`] — the keyword → distinct-path index of Figure 8, used to
//!   compute context summaries;
//! * [`FullTextQuery`] — the search-query component of SEDA query terms
//!   (keyword bags, phrases, boolean combinations, `*`).
//!
//! ```
//! use seda_textindex::{FullTextQuery, NodeIndex};
//! use seda_xmlstore::parse_collection;
//!
//! let collection = parse_collection(vec![
//!     ("a.xml", "<country><name>United States</name></country>"),
//! ]).unwrap();
//! let index = NodeIndex::build(&collection);
//! let hits = index.evaluate(&FullTextQuery::phrase("United States"));
//! assert_eq!(hits.len(), 1);
//! ```

pub mod audit;
pub mod context_index;
pub mod dict;
pub mod node_index;
pub mod query;
pub mod tokenize;

pub use context_index::{ContextIndex, ContextIndexShard, CountStorage, PathEntry};
pub use dict::{TermDict, TermId};
pub use node_index::{NodeIndex, NodeIndexShard, Posting, ScoredNode};
pub use query::{FullTextQuery, QueryParseError};
pub use tokenize::{terms, tokenize, Token};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::query::FullTextQuery;
    use crate::tokenize::terms;

    fn arb_text() -> impl Strategy<Value = String> {
        proptest::collection::vec("[a-z]{1,8}", 0..12).prop_map(|words| words.join(" "))
    }

    proptest! {
        /// Tokenisation is idempotent: tokenising already-normalised tokens
        /// yields the same tokens.
        #[test]
        fn tokenize_is_idempotent(text in arb_text()) {
            let once = terms(&text);
            let twice = terms(&once.join(" "));
            prop_assert_eq!(once, twice);
        }

        /// A phrase query built from a text always matches that text.
        #[test]
        fn phrase_matches_its_own_source(text in arb_text()) {
            let q = FullTextQuery::phrase(&text);
            prop_assert!(q.matches_text(&text));
        }

        /// Keyword matching is order-insensitive: a keyword bag built from a
        /// text matches any permutation of the text.
        #[test]
        fn keywords_are_order_insensitive(mut words in proptest::collection::vec("[a-z]{1,8}", 1..8)) {
            let q = FullTextQuery::keywords(&words.join(" "));
            words.reverse();
            prop_assert!(q.matches_text(&words.join(" ")));
        }

        /// And/Or obey their boolean semantics with respect to the component
        /// queries on arbitrary text.
        #[test]
        fn boolean_semantics(text in arb_text(), a in "[a-z]{1,6}", b in "[a-z]{1,6}") {
            let qa = FullTextQuery::keywords(&a);
            let qb = FullTextQuery::keywords(&b);
            let and = FullTextQuery::And(Box::new(qa.clone()), Box::new(qb.clone()));
            let or = FullTextQuery::Or(Box::new(qa.clone()), Box::new(qb.clone()));
            let not = FullTextQuery::Not(Box::new(qa.clone()));
            let ma = qa.matches_text(&text);
            let mb = qb.matches_text(&text);
            prop_assert_eq!(and.matches_text(&text), ma && mb);
            prop_assert_eq!(or.matches_text(&text), ma || mb);
            prop_assert_eq!(not.matches_text(&text), !ma);
        }

        /// The query parser round-trips simple keyword queries.
        #[test]
        fn parser_accepts_keyword_bags(words in proptest::collection::vec("[a-z]{1,8}", 1..5)) {
            let input = words.join(" ");
            let parsed = FullTextQuery::parse(&input).unwrap();
            prop_assert_eq!(parsed, FullTextQuery::Keywords(words));
        }
    }
}
