//! Parser robustness: [`seda_xmlstore::parse_collection`] must return a typed
//! result — never panic — on arbitrarily mangled input.  The strategy mangles
//! a well-formed base document byte-by-byte (overwrites, truncation, garbage
//! suffixes), which reaches far deeper into the tokenizer's state machine
//! than fully random strings would.

use proptest::prelude::*;
use seda_xmlstore::parse_collection;

const BASE: &str = r#"<country id="c1"><name>Andorra</name>
  <economy><import_partners><item seq="1">
    <trade_country ref="c2">Spain</trade_country>
    <percentage>48.7</percentage>
  </item></import_partners></economy>
</country>"#;

/// Parses `xml` and requires a non-panicking outcome; `Ok` and `Err` are
/// both acceptable, aborting the process is not.
fn parse_never_panics(label: &str, xml: &str) {
    let _ = parse_collection([(label, xml)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn byte_mangled_documents_never_panic(
        edits in proptest::collection::vec((0usize..BASE.len(), any::<u8>()), 1..8),
        truncate_at in 1usize..BASE.len(),
    ) {
        let mut bytes = BASE.as_bytes().to_vec();
        for &(position, byte) in &edits {
            bytes[position] = byte;
        }
        bytes.truncate(truncate_at);
        let mangled = String::from_utf8_lossy(&bytes);
        parse_never_panics("mangled.xml", &mangled);
    }

    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        let garbage = String::from_utf8_lossy(&bytes);
        parse_never_panics("garbage.xml", &garbage);
        // Garbage grafted onto a well-formed prefix exercises the recovery
        // paths after the tokenizer has committed to element state.
        let grafted = format!("<country><name>{garbage}</name>{garbage}");
        parse_never_panics("grafted.xml", &grafted);
    }
}
