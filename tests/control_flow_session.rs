//! Experiment F6: the Figure 6 control flow — search, context refinement,
//! connection refinement, complete results, aggregation — exercised through
//! the session API over the Factbook-like corpus.

use seda_core::{EngineConfig, SedaEngine, Session, SessionStage};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::{BuildOptions, Registry};

fn engine() -> SedaEngine {
    let collection = factbook::generate(&FactbookConfig::small()).unwrap();
    SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default()).unwrap()
}

#[test]
fn stages_progress_through_the_feedback_loop() {
    let engine = engine();
    let mut session = Session::new(&engine);
    assert_eq!(session.stage(), SessionStage::Empty);

    session
        .submit_text(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
        .unwrap();
    assert_eq!(session.stage(), SessionStage::Explored);
    let k = session.top_k().unwrap().tuples.len();
    assert!(k > 0 && k <= 10);

    // Context summary must offer both the import and export contexts for the
    // trade_country term — the ambiguity the user resolves.
    let summary = session.context_summary().unwrap();
    let tc_bucket = &summary.buckets[1];
    assert!(tc_bucket.entries.len() >= 2, "trade_country occurs in import and export contexts");

    // Refine to import partners.
    let c = engine.collection();
    let tc = c
        .paths()
        .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
        .unwrap();
    let pct =
        c.paths().get_str(c.symbols(), "/country/economy/import_partners/item/percentage").unwrap();
    let name = c.paths().get_str(c.symbols(), "/country/name").unwrap();
    session.select_contexts(0, vec![name]).unwrap();
    session.select_contexts(1, vec![tc]).unwrap();
    session.select_contexts(2, vec![pct]).unwrap();
    assert_eq!(session.stage(), SessionStage::Explored, "refinement keeps the session exploring");

    // Restricting contexts restricts every top-k tuple to those contexts.
    for tuple in &session.top_k().unwrap().tuples {
        assert_eq!(
            c.context_string(tuple.nodes[1]).unwrap(),
            "/country/economy/import_partners/item/trade_country"
        );
    }

    // Connection refinement: keep only the same-item connection.
    let connections = session.connection_summary().unwrap().clone();
    assert!(!connections.is_empty());
    let same_item: Vec<_> =
        connections.connections.iter().filter(|c| c.length() == 2).cloned().collect();
    assert!(!same_item.is_empty());
    session.select_connections(same_item).unwrap();

    let complete = session.complete_results().unwrap().clone();
    assert!(!complete.is_empty());
    assert_eq!(session.stage(), SessionStage::Materialized);
    // Every complete-result row satisfies the connection constraint: the
    // trade_country and percentage nodes share the same item parent.
    for row in &complete.rows {
        let tc_parent = c.node(row[1].0).unwrap().parent;
        let pct_parent = c.node(row[2].0).unwrap().parent;
        assert_eq!(tc_parent, pct_parent);
    }

    let build = session.build_cube(&BuildOptions::default()).unwrap();
    assert!(build.schema.fact("import-trade-percentage").is_some());
    assert_eq!(session.stage(), SessionStage::Analyzed);
}

#[test]
fn complete_results_are_a_superset_of_topk_tuples() {
    let engine = engine();
    let mut session = Session::new(&engine);
    session.set_k(5);
    session.submit_text(r#"(/country/name, *) AND (/country/year, *)"#).unwrap();
    let topk_nodes: Vec<Vec<_>> = session.top_k().unwrap().node_tuples();
    let complete = session.complete_results().unwrap();
    assert!(complete.len() >= topk_nodes.len());
    for tuple in &topk_nodes {
        let found = complete
            .rows
            .iter()
            .any(|row| row.iter().map(|(n, _)| *n).collect::<Vec<_>>() == *tuple);
        assert!(found, "top-k tuple missing from the complete result");
    }
}

#[test]
fn unparseable_queries_are_rejected_without_changing_state() {
    let engine = engine();
    let mut session = Session::new(&engine);
    assert!(session.submit_text("this is not a SEDA query").is_err());
    assert_eq!(session.stage(), SessionStage::Empty);
    assert!(session.top_k().is_err());
}
