//! Experiment T1 (Table 1): dataguide statistics at the 40% overlap threshold
//! for the four data sets.  Absolute counts depend on corpus scale; the test
//! verifies the *shape* the paper reports: RecipeML collapses to exactly 3
//! dataguides, Google Base and Mondial reduce by an order of magnitude or
//! more, while the heterogeneous World Factbook retains a small reduction
//! factor (≈3 in the paper).

use seda_datagen::{
    factbook, googlebase, mondial, recipeml, FactbookConfig, GoogleBaseConfig, MondialConfig,
    RecipeMlConfig,
};
use seda_dataguide::DataGuideSet;

#[test]
fn recipeml_collapses_to_three_dataguides() {
    let collection = recipeml::generate(&RecipeMlConfig::small()).unwrap();
    let guides = DataGuideSet::build(&collection, 0.4).unwrap();
    assert_eq!(guides.len(), 3, "paper: 10988 documents -> 3 dataguides");
    let stats = guides.stats(collection.len());
    assert!(stats.reduction_factor > 60.0);
}

#[test]
fn googlebase_collapses_to_one_guide_per_category() {
    let config = GoogleBaseConfig { items: 600, categories: 24, ..GoogleBaseConfig::small() };
    let collection = googlebase::generate(&config).unwrap();
    let guides = DataGuideSet::build(&collection, 0.4).unwrap();
    assert_eq!(
        guides.len(),
        config.categories,
        "paper: 10000 documents -> 88 dataguides (one per flat category)"
    );
}

#[test]
fn mondial_reduces_by_more_than_an_order_of_magnitude() {
    let collection = mondial::generate(&MondialConfig::small()).unwrap();
    let guides = DataGuideSet::build(&collection, 0.4).unwrap();
    assert!(
        guides.len() * 10 <= collection.len(),
        "paper: 5563 documents -> 86 dataguides; got {} -> {}",
        collection.len(),
        guides.len()
    );
}

#[test]
fn factbook_remains_heterogeneous() {
    let collection = factbook::generate(&FactbookConfig::paper_scaled(80, 6)).unwrap();
    let guides = DataGuideSet::build(&collection, 0.4).unwrap();
    let stats = guides.stats(collection.len());
    // The paper reports a reduction factor of only ~3.2 (1600 -> 500); allow a
    // generous band but require the corpus to stay far from fully collapsed.
    assert!(
        stats.reduction_factor >= 1.5 && stats.reduction_factor <= 40.0,
        "factbook reduction factor {} out of the expected band",
        stats.reduction_factor
    );
    assert!(guides.len() >= 20, "factbook must retain many dataguides, got {}", guides.len());
}

#[test]
fn every_document_is_assigned_to_exactly_one_guide() {
    let collection = mondial::generate(&MondialConfig::small()).unwrap();
    let guides = DataGuideSet::build(&collection, 0.4).unwrap();
    let mut covered = 0;
    for (_, guide) in guides.iter() {
        covered += guide.documents().len();
    }
    assert_eq!(covered, collection.len());
    for doc in collection.documents() {
        assert!(guides.guide_of_document(doc.id).is_some());
    }
}
