//! Experiment F3: the paper's Query 1 end to end on the Factbook-like corpus —
//! from keyword terms through context refinement to the Figure 3(c) fact and
//! dimension tables, including the automatically added `year` key column and
//! the fixed trade facts of the paper (China 15% / Canada 16.9% in 2006, …).

use seda_core::{ContextSelections, EngineConfig, SedaEngine, SedaQuery, Session};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::{BuildOptions, CubeQuery, Registry};

fn engine() -> SedaEngine {
    let collection = factbook::generate(&FactbookConfig::small()).unwrap();
    SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default()).unwrap()
}

fn import_selection(engine: &SedaEngine) -> ContextSelections {
    let c = engine.collection();
    let mut selections = ContextSelections::none();
    selections.select(0, vec![c.paths().get_str(c.symbols(), "/country/name").unwrap()]);
    selections.select(
        1,
        vec![c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
            .unwrap()],
    );
    selections.select(
        2,
        vec![c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
            .unwrap()],
    );
    selections
}

#[test]
fn query1_fact_table_contains_the_papers_fixed_rows() {
    let engine = engine();
    let query =
        SedaQuery::parse(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
            .unwrap();
    let selections = import_selection(&engine);
    let result = engine.complete_results(&query, &selections, &[]).unwrap();
    assert!(!result.is_empty());
    let build = engine.build_star_schema(&result, &BuildOptions::default());

    let fact = build.schema.fact("import-trade-percentage").expect("fact table derived");
    assert_eq!(fact.dimension_columns, vec!["country", "year", "import-country"]);
    assert!(fact.dimensions_form_key(), "year augmentation must restore the primary key");

    let rows: Vec<(String, String, String, String)> = fact
        .rows
        .iter()
        .map(|r| {
            (
                r.dimensions[0].clone(),
                r.dimensions[1].clone(),
                r.dimensions[2].clone(),
                r.measures[0].clone(),
            )
        })
        .collect();
    // Figure 3(c) rows present in the small corpus (years 2004-2006).
    for expected in [
        ("United States", "2006", "China", "15"),
        ("United States", "2006", "Canada", "16.9"),
        ("United States", "2005", "China", "13.8"),
        ("United States", "2005", "Mexico", "10.3"),
        ("United States", "2004", "China", "12.5"),
        ("United States", "2004", "Mexico", "10.7"),
    ] {
        let expected = (
            expected.0.to_string(),
            expected.1.to_string(),
            expected.2.to_string(),
            expected.3.to_string(),
        );
        assert!(rows.contains(&expected), "missing Figure 3 row {expected:?}");
    }

    // Dimension tables of Figure 3(c).
    let partners = build.schema.dimension("import-country").unwrap();
    assert!(partners.values.contains(&"China".to_string()));
    assert!(partners.values.contains(&"Canada".to_string()));
    let years = build.schema.dimension("year").unwrap();
    for y in ["2004", "2005", "2006"] {
        assert!(years.values.contains(&y.to_string()));
    }
}

#[test]
fn session_reproduces_the_same_cube_and_aggregates_it() {
    let engine = engine();
    let mut session = Session::new(&engine);
    session
        .submit_text(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
        .unwrap();
    let c = engine.collection();
    session
        .select_contexts(0, vec![c.paths().get_str(c.symbols(), "/country/name").unwrap()])
        .unwrap();
    session
        .select_contexts(
            1,
            vec![c
                .paths()
                .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
                .unwrap()],
        )
        .unwrap();
    session
        .select_contexts(
            2,
            vec![c
                .paths()
                .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
                .unwrap()],
        )
        .unwrap();
    let build = session.build_cube(&BuildOptions::default()).unwrap().clone();
    assert!(build.matching.facts.contains(&"import-trade-percentage".to_string()));
    assert!(build.matching.dimensions.contains(&"country".to_string()));

    let us_2006 = session
        .aggregate(
            "import-trade-percentage",
            &CubeQuery::sum(&["import-country"], "import-trade-percentage")
                .filter("year", "2006")
                .filter("country", "United States"),
        )
        .unwrap();
    let china = us_2006.cell(&["China"]).expect("China cell");
    assert!((china.value - 15.0).abs() < 1e-9, "paper: US imports 15% from China in 2006");
    let canada = us_2006.cell(&["Canada"]).expect("Canada cell");
    assert!((canada.value - 16.9).abs() < 1e-9);
}

#[test]
fn topk_results_for_query1_are_connected_and_ranked() {
    let engine = engine();
    let query =
        SedaQuery::parse(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
            .unwrap();
    let topk = engine.top_k(&query, &ContextSelections::none(), 10);
    assert!(!topk.tuples.is_empty());
    for window in topk.tuples.windows(2) {
        assert!(window[0].score >= window[1].score);
    }
    for tuple in &topk.tuples {
        assert_eq!(tuple.nodes.len(), 3);
        assert!(tuple.compactness > 0.0);
    }
}
