//! Fault-injection harness: every named fault site in
//! [`seda_core::faults::FAULT_SITES`], when armed, must surface as a typed
//! error (never a process abort) and leave the engine fully serviceable for
//! the next request.
//!
//! Run with `cargo test -p seda --features failpoints`.

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use seda_core::faults::{arm, disarm_all, FaultAction, FAULT_SITES};
use seda_core::metrics::names;
use seda_core::{
    Budget, ContextSelections, EngineConfig, RequestContext, SedaEngine, SedaError, SedaQuery,
    SedaRequest,
};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::Registry;

/// The fault registry is process-global, so tests in this binary must not
/// overlap: each one holds this guard while a site is armed.
fn serialise() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(PoisonError::into_inner)
}

fn engine_with_parallelism(parallelism: usize) -> Result<SedaEngine, SedaError> {
    let collection =
        factbook::generate(&FactbookConfig::paper_scaled(12, 3)).expect("generate factbook");
    SedaEngine::build(
        collection,
        Registry::factbook_defaults(),
        EngineConfig { parallelism, ..EngineConfig::default() },
    )
}

fn topk_request() -> SedaRequest {
    SedaRequest::parse(r#"TOPK 5 FOR (*, "United States") AND (trade_country, *)"#)
        .expect("topk request parses")
}

const SOURCES: [(&str, &str); 2] = [
    ("a.xml", "<country><name>Andorra</name></country>"),
    ("b.xml", "<country><name>Belize</name></country>"),
];

#[test]
fn parse_site_faults_surface_as_internal_and_build_recovers() {
    let _guard = serialise();
    for action in [FaultAction::Error, FaultAction::Panic] {
        arm("parse", action);
        let built = SedaEngine::build_from_sources(
            SOURCES,
            Registry::factbook_defaults(),
            EngineConfig::default(),
        );
        assert!(
            matches!(built, Err(SedaError::Internal(_))),
            "armed parse site ({action:?}) must fail the build"
        );
    }
    disarm_all();
    // The fault consumed its arming: the identical build now succeeds.
    let engine = SedaEngine::build_from_sources(
        SOURCES,
        Registry::factbook_defaults(),
        EngineConfig::default(),
    )
    .expect("unarmed build succeeds");
    assert_eq!(engine.collection().len(), 2);
}

#[test]
fn build_site_faults_fail_sequential_and_sharded_builds_cleanly() {
    let _guard = serialise();
    // Sequential path reaches "oracle-build" only.
    arm("oracle-build", FaultAction::Error);
    assert!(
        matches!(engine_with_parallelism(1), Err(SedaError::Internal(_))),
        "armed oracle-build must fail the sequential build"
    );

    // Sharded path reaches both merge-side sites; a panic at either must be
    // contained by the build facade.
    for site in ["oracle-build", "shard-merge"] {
        arm(site, FaultAction::Panic);
        assert!(
            matches!(engine_with_parallelism(2), Err(SedaError::Internal(_))),
            "armed {site} must fail the sharded build"
        );
    }
    disarm_all();
    assert!(engine_with_parallelism(2).is_ok(), "unarmed sharded build succeeds");
}

#[test]
fn scratch_lock_panic_poisons_and_the_engine_recovers_in_place() {
    let _guard = serialise();
    let engine = engine_with_parallelism(1).expect("engine build");
    let query = SedaQuery::parse(r#"(*, "United States") AND (trade_country, *)"#).unwrap();
    let baseline = engine.top_k(&query, &ContextSelections::none(), 5);
    assert!(!baseline.tuples.is_empty(), "workload must produce matches");

    // The site fires while the shared scratch mutex is held, so the panic
    // poisons it.  `engine.top_k` is an infallible signature: the panic
    // propagates to the caller here (readers route through catch_unwind).
    arm("scratch-lock", FaultAction::Panic);
    let panicked =
        catch_unwind(AssertUnwindSafe(|| engine.top_k(&query, &ContextSelections::none(), 5)));
    assert!(panicked.is_err(), "armed scratch-lock must panic through top_k");
    disarm_all();

    // The next query recovers the poisoned mutex in place (clear + reuse) —
    // it must NOT fall back to a throwaway fresh scratch.
    let recovered = engine.top_k(&query, &ContextSelections::none(), 5);
    assert_eq!(recovered.tuples, baseline.tuples, "recovery must not change answers");
    assert_eq!(
        engine.fresh_scratch_fallbacks(),
        0,
        "poison recovery must reuse the shared scratch, not abandon it"
    );
}

#[test]
fn mid_search_panic_becomes_internal_and_the_reader_keeps_serving() {
    let _guard = serialise();
    let engine = engine_with_parallelism(1).expect("engine build");
    let mut reader = engine.reader();
    let request = topk_request();

    arm("mid-search", FaultAction::Panic);
    let err = reader.execute(&request).expect_err("armed mid-search must fail the request");
    assert!(matches!(err, SedaError::Internal(_)), "{err:?}");
    disarm_all();

    // Same reader handle, same request: the panic was contained and the
    // scratch reset, so the next execution answers normally.
    let response = reader.execute(&request).expect("reader recovered");
    assert!(!response.top_k().expect("top-k payload").tuples.is_empty());
}

#[test]
fn mid_search_delay_trips_the_request_deadline() {
    let _guard = serialise();
    let engine = engine_with_parallelism(1).expect("engine build");
    let mut reader = engine.reader();
    let ctx = RequestContext::new(Budget::unlimited().with_deadline(Duration::from_millis(5)));

    arm("mid-search", FaultAction::Delay(Duration::from_millis(50)));
    let err = reader
        .execute_governed(&topk_request(), &ctx)
        .expect_err("delayed search must breach the deadline");
    assert!(matches!(err, SedaError::Limit { resource: "deadline", .. }), "{err:?}");
    disarm_all();
}

#[test]
fn armed_faults_never_yield_a_verified_engine_that_answers_wrong() {
    let _guard = serialise();
    // Unarmed baseline: the reference engine and its answer to the workload.
    let baseline_engine = engine_with_parallelism(2).expect("baseline engine build");
    assert!(baseline_engine.verify().is_ok(), "baseline engine must pass its audit");
    let query = SedaQuery::parse(r#"(*, "United States") AND (trade_country, *)"#).unwrap();
    let baseline = baseline_engine.top_k(&query, &ContextSelections::none(), 5);

    // For every catalogued site and every failure mode: either the build
    // surfaces a typed error, or — if the armed site was never reached — the
    // resulting engine passes the full structural audit AND answers exactly
    // like the baseline.  A fault must never produce an engine that verifies
    // clean yet answers wrong.
    for &site in FAULT_SITES {
        for action in [FaultAction::Error, FaultAction::Panic] {
            arm(site, action);
            match engine_with_parallelism(2) {
                Err(SedaError::Internal(_)) => {}
                Err(other) => panic!("site {site} ({action:?}) must fail typed, got {other:?}"),
                Ok(engine) => {
                    // Query-time sites are still armed here; disarm so the
                    // answer check below measures the engine, not the fault.
                    disarm_all();
                    assert!(
                        engine.verify().is_ok(),
                        "site {site} ({action:?}) yielded an engine that fails verify()"
                    );
                    let answer = engine.top_k(&query, &ContextSelections::none(), 5);
                    assert_eq!(
                        answer.tuples, baseline.tuples,
                        "site {site} ({action:?}) passed verify() but answers differ"
                    );
                }
            }
            disarm_all();
        }
    }

    // Query-time faults: after a contained mid-search panic, the engine must
    // still pass the full audit and keep answering exactly like before — a
    // fault that silently corrupted scratch state would either fail verify()
    // or change the answer, and both are caught here.
    let mut reader = baseline_engine.reader();
    arm("mid-search", FaultAction::Panic);
    assert!(reader.execute(&topk_request()).is_err(), "armed mid-search must fail the request");
    disarm_all();
    assert!(baseline_engine.verify().is_ok(), "engine must pass its audit after a contained fault");
    let recovered = baseline_engine.top_k(&query, &ContextSelections::none(), 5);
    assert_eq!(recovered.tuples, baseline.tuples, "post-fault answers must match the baseline");
}

#[test]
fn explain_analyze_survives_a_contained_mid_search_panic() {
    let _guard = serialise();
    let engine = engine_with_parallelism(1).expect("engine build");
    let mut reader = engine.reader();
    let request = SedaRequest::parse(
        r#"EXPLAIN ANALYZE TOPK 5 FOR (*, "United States") AND (trade_country, *)"#,
    )
    .expect("analyze request parses");
    let panics_before = engine.metrics().counter(names::PANICS_CONTAINED_TOTAL, "").get();

    // The forced-tracing request unwinds mid-search; the panic must be
    // contained, and neither the forced tracing nor any half-open span may
    // leak into the reader's steady state.
    arm("mid-search", FaultAction::Panic);
    let err = reader.execute(&request).expect_err("armed mid-search must fail the request");
    assert!(matches!(err, SedaError::Internal(_)), "{err:?}");
    disarm_all();
    assert!(!reader.tracing_enabled(), "forced tracing must be restored after a failure");
    assert_eq!(
        engine.metrics().counter(names::PANICS_CONTAINED_TOTAL, "").get(),
        panics_before + 1,
        "the contained panic must be counted as a first-class metric"
    );

    // The same reader renders a complete annotated transcript next time —
    // exactly one [plan] span proves the failed request's trace was discarded.
    let response = reader.execute(&request).expect("reader recovered");
    let transcript = response.explain_transcript().expect("explain payload");
    assert!(transcript.contains("analyze:"), "{transcript}");
    assert!(transcript.contains("[search]"), "{transcript}");
    assert_eq!(transcript.matches("[plan]").count(), 1, "{transcript}");
}

#[test]
fn batch_isolation_confines_an_injected_panic_to_one_request() {
    let _guard = serialise();
    let engine = engine_with_parallelism(1).expect("engine build");
    let requests = vec![topk_request(), topk_request(), topk_request()];

    // One-shot arming: exactly one of the batch's requests hits the fault;
    // per-item isolation must keep the other two healthy.
    arm("mid-search", FaultAction::Panic);
    let results = engine.execute_batch(&requests, 2);
    disarm_all();
    assert_eq!(results.len(), requests.len());
    let failures = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(failures, 1, "exactly one request absorbs the one-shot fault: {results:?}");
    for ok in results.iter().flatten() {
        assert!(!ok.top_k().expect("top-k payload").tuples.is_empty());
    }
}
