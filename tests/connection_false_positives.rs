//! Experiment A2: false-positive connections (Sec. 6.1).  Dataguide-level
//! connections that have no instantiation in the query result arise from (a)
//! keyword restrictions and (b) overlap merging; "the higher the overlap
//! threshold, the fewer the false positive connections".

use seda_core::{ContextSelections, EngineConfig, SedaEngine, SedaQuery};
use seda_datagen::{factbook, FactbookConfig};
use seda_dataguide::{
    discover_connections, false_positive_connections, guide_connection, guide_links, DataGuideSet,
};
use seda_olap::Registry;
use seda_xmlstore::PathId;

fn setup() -> (SedaEngine, Vec<(PathId, PathId)>, Vec<seda_dataguide::Connection>) {
    let collection = factbook::generate(&FactbookConfig::small()).unwrap();
    let engine =
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
            .unwrap();
    let query =
        SedaQuery::parse(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
            .unwrap();
    let topk = engine.top_k(&query, &ContextSelections::none(), 15);
    let instantiated =
        discover_connections(engine.collection(), engine.graph(), &topk.node_tuples(), 12);

    // Candidate pairs: trade_country x percentage contexts plus a pair that
    // the keyword restriction rules out (name x refugees origin).
    let c = engine.collection();
    let summary = engine.context_summary(&query);
    let mut pairs = Vec::new();
    for a in summary.buckets[1].paths() {
        for b in summary.buckets[2].paths() {
            pairs.push((a, b));
        }
    }
    if let (Some(name), Some(refugees)) = (
        c.paths().get_str(c.symbols(), "/country/name"),
        c.paths().get_str(c.symbols(), "/country/transnational_issues/refugees/country_of_origin"),
    ) {
        pairs.push((name, refugees));
    }
    (engine, pairs, instantiated)
}

#[test]
fn false_positives_exist_and_are_a_subset_of_guide_connections() {
    let (engine, pairs, instantiated) = setup();
    let collection = engine.collection();
    let guides = engine.guides();
    let links = engine.guide_links();
    let (fp, total) = false_positive_connections(collection, guides, links, &instantiated, &pairs);
    assert!(total >= 1, "the dataguides connect the candidate pairs");
    assert!(fp <= total);
    assert!(fp >= 1, "cross import/export pairs and the refugees pair are never instantiated");
}

#[test]
fn higher_thresholds_do_not_increase_false_positives() {
    let (engine, pairs, instantiated) = setup();
    let collection = engine.collection();
    let mut previous = usize::MAX;
    for threshold in [0.1, 0.4, 0.9] {
        let guides = DataGuideSet::build(collection, threshold).unwrap();
        let links = guide_links(collection, engine.graph(), &guides);
        let (fp, _total) = false_positive_connections(
            collection,
            guides_ref(&guides),
            &links,
            &instantiated,
            &pairs,
        );
        assert!(
            fp <= previous,
            "false positives must not increase with the threshold ({previous} -> {fp} at {threshold})"
        );
        previous = fp;
    }
}

fn guides_ref(guides: &DataGuideSet) -> &DataGuideSet {
    guides
}

#[test]
fn instantiated_connections_are_never_false_positives() {
    let (engine, _, instantiated) = setup();
    let collection = engine.collection();
    let guides = engine.guides();
    let links = engine.guide_links();
    for connection in &instantiated {
        let pair = [(connection.from_path, connection.to_path)];
        let (fp, total) =
            false_positive_connections(collection, guides, links, &instantiated, &pair);
        assert_eq!(fp, 0, "an instantiated connection cannot be a false positive");
        // The dataguide summary knows about the connection too (it may route
        // it differently, but it must exist).
        if total == 1 {
            assert!(guide_connection(
                collection,
                guides,
                links,
                connection.from_path,
                connection.to_path
            )
            .is_some());
        }
    }
}
