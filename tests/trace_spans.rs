//! Span-tracing integration: reader-level tracing toggles per handle, build
//! profiles carry their span trees, and span wall times nest consistently
//! inside the profile totals.

use seda_core::{EngineConfig, SedaEngine, SedaRequest};
use seda_olap::Registry;
use seda_xmlstore::parse_collection;

fn engine_with_parallelism(parallelism: usize) -> SedaEngine {
    let collection = parse_collection(vec![
        (
            "us.xml",
            r#"<country><name>United States</name><year>2006</year>
                 <economy><import_partners>
                   <item><trade_country>China</trade_country><percentage>15</percentage></item>
                 </import_partners></economy></country>"#,
        ),
        ("mx.xml", r#"<country><name>Mexico</name><year>2003</year></country>"#),
    ])
    .unwrap();
    SedaEngine::build(
        collection,
        Registry::factbook_defaults(),
        EngineConfig { parallelism, ..EngineConfig::default() },
    )
    .unwrap()
}

#[test]
fn tracing_is_off_by_default_and_toggles_per_reader() {
    let e = engine_with_parallelism(1);
    let mut reader = e.reader();
    assert!(!reader.tracing_enabled());
    let untraced = reader.execute_text("TOPK 5 FOR (name, *)").unwrap();
    assert!(untraced.profile.spans.is_empty());

    reader.set_tracing(true);
    assert!(reader.tracing_enabled());
    let traced = reader.execute_text("TOPK 5 FOR (name, *)").unwrap();
    assert!(!traced.profile.spans.is_empty());
    assert_eq!(untraced.payload, traced.payload, "tracing must not change answers");

    reader.set_tracing(false);
    let untraced_again = reader.execute_text("TOPK 5 FOR (name, *)").unwrap();
    assert!(untraced_again.profile.spans.is_empty());
}

#[test]
fn traced_requests_record_the_request_lifecycle() {
    let e = engine_with_parallelism(1);
    let mut reader = e.reader();
    reader.set_tracing(true);
    let response = reader.execute_text("TOPK 5 FOR (name, *)").unwrap();
    let spans = &response.profile.spans;
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"parse"), "{names:?}");
    assert!(names.contains(&"plan"), "{names:?}");
    assert!(names.contains(&"execute"), "{names:?}");
    assert!(names.contains(&"search"), "{names:?}");
    // The search span nests inside execute.
    let execute = spans.iter().find(|s| s.name == "execute").unwrap();
    let search = spans.iter().find(|s| s.name == "search").unwrap();
    assert_eq!(search.depth, execute.depth + 1);
    assert!(search.wall_secs <= execute.wall_secs + 1e-9);
    // The search span carries the profile's counters.
    assert_eq!(search.counters.sorted_accesses, response.profile.sorted_accesses);
    for span in spans {
        assert!(span.wall_secs >= 0.0 && span.start_secs >= 0.0);
    }
}

#[test]
fn typed_requests_trace_without_the_parse_span() {
    let e = engine_with_parallelism(1);
    let mut reader = e.reader();
    reader.set_tracing(true);
    let request = SedaRequest::parse("TWIG /country/name").unwrap();
    let response = reader.execute(&request).unwrap();
    let names: Vec<&str> = response.profile.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(!names.contains(&"parse"), "{names:?}");
    assert!(names.contains(&"twig-evaluate"), "{names:?}");
    let twig = response.profile.spans.iter().find(|s| s.name == "twig-evaluate").unwrap();
    assert!(twig.counters.nodes_visited > 0, "twig evaluation reports scanned nodes");
}

#[test]
fn consecutive_traced_requests_never_leak_spans() {
    let e = engine_with_parallelism(1);
    let mut reader = e.reader();
    reader.set_tracing(true);
    let first = reader.execute_text("TOPK 5 FOR (name, *)").unwrap();
    let second = reader.execute_text("TOPK 5 FOR (name, *)").unwrap();
    let count = |r: &seda_core::SedaResponse, name: &str| {
        r.profile.spans.iter().filter(|s| s.name == name).count()
    };
    for name in ["parse", "plan", "execute", "search"] {
        assert_eq!(count(&first, name), 1, "first request: {name}");
        assert_eq!(count(&second, name), 1, "second request: {name}");
    }
    // A failed parse must not pollute the next request's trace either.
    assert!(reader.execute_text("TOPK banana").is_err());
    let third = reader.execute_text("TOPK 5 FOR (name, *)").unwrap();
    assert_eq!(count(&third, "parse"), 1);
}

#[test]
fn sequential_build_profiles_carry_substrate_spans() {
    let e = engine_with_parallelism(1);
    let spans = &e.build_profile().spans;
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "build:data-graph",
        "build:node-index",
        "build:context-index",
        "build:dataguides",
        "build:guide-links",
        "build:audit-verify",
    ] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
    assert!(!names.contains(&"shard"), "sequential builds have no shard phase: {names:?}");
}

#[test]
fn sharded_build_profiles_nest_shard_and_merge_phases() {
    let e = engine_with_parallelism(2);
    let spans = &e.build_profile().spans;
    let graph = spans.iter().find(|s| s.name == "build:data-graph").unwrap();
    assert_eq!(graph.depth, 0);
    let shard_count = spans.iter().filter(|s| s.name == "shard" && s.depth == 1).count();
    let merge_count = spans.iter().filter(|s| s.name == "merge" && s.depth == 1).count();
    assert_eq!(shard_count, 4, "one shard phase per substrate: {spans:?}");
    assert_eq!(merge_count, 4, "one merge phase per substrate: {spans:?}");
    let total = e.build_profile().total_secs;
    for span in spans {
        assert!(span.wall_secs <= total + 1e-9, "span exceeds the build wall time: {span:?}");
    }
}
