//! Determinism of the shard-parallel engine build: building the same
//! collection twice with `parallelism > 1` — and once sequentially — must
//! yield identical substrates, identical guide links, identical dataguide
//! statistics and identical query answers, regardless of worker scheduling.

use seda_core::{ContextSelections, EngineConfig, SedaEngine, SedaQuery};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::Registry;

fn build(parallelism: usize) -> SedaEngine {
    let collection = factbook::generate(&FactbookConfig::small()).unwrap();
    SedaEngine::build(
        collection,
        Registry::factbook_defaults(),
        EngineConfig { parallelism, ..EngineConfig::default() },
    )
    .unwrap()
}

#[test]
fn parallel_builds_are_identical_across_runs_and_to_sequential() {
    let sequential = build(1);
    let first = build(4);
    let second = build(4);

    for parallel in [&first, &second] {
        assert_eq!(parallel.node_index(), sequential.node_index());
        assert_eq!(parallel.context_index(), sequential.context_index());
        assert_eq!(parallel.graph(), sequential.graph());
        assert_eq!(parallel.guides(), sequential.guides());
        assert_eq!(parallel.guide_links(), sequential.guide_links());
        assert_eq!(parallel.dataguide_stats(), sequential.dataguide_stats());
    }

    // Guide links are part of the engine's public output; their order must be
    // stable, not merely their content.
    assert_eq!(first.guide_links(), second.guide_links());
}

#[test]
fn parallel_query_answers_match_sequential_byte_for_byte() {
    let sequential = build(1);
    let parallel = build(3);

    let query =
        SedaQuery::parse(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
            .unwrap();

    let seq_summary = sequential.context_summary(&query);
    let par_summary = parallel.context_summary(&query);
    assert_eq!(seq_summary.buckets.len(), par_summary.buckets.len());
    for (a, b) in seq_summary.buckets.iter().zip(par_summary.buckets.iter()) {
        assert_eq!(a.entries, b.entries);
    }

    let seq_topk = sequential.top_k(&query, &ContextSelections::none(), 10);
    let par_topk = parallel.top_k(&query, &ContextSelections::none(), 10);
    assert_eq!(seq_topk.tuples.len(), par_topk.tuples.len());
    for (a, b) in seq_topk.tuples.iter().zip(par_topk.tuples.iter()) {
        assert_eq!(a.nodes, b.nodes);
        assert!((a.score - b.score).abs() < 1e-12);
    }

    let seq_complete =
        sequential.complete_results(&query, &ContextSelections::none(), &[]).unwrap();
    let par_complete = parallel.complete_results(&query, &ContextSelections::none(), &[]).unwrap();
    assert_eq!(seq_complete.rows, par_complete.rows);
}

#[test]
fn build_profile_is_surfaced_for_parallel_builds() {
    let engine = build(4);
    let profile = engine.build_profile();
    assert_eq!(profile.parallelism, 4);
    assert_eq!(profile.documents, engine.collection().len());
    assert_eq!(profile.shards, engine.collection().len());
    assert!(profile.shard_secs() > 0.0);
    assert!(profile.total_secs >= profile.shard_secs());
}
