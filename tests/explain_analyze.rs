//! `EXPLAIN ANALYZE` end-to-end: for every statement type, the request
//! executes the plan and returns the annotated transcript — the plan
//! transcript, the `analyze:` budget-accounting line and the per-step span
//! tree — while the profile keeps the execution's counters and rows.

use seda_core::{ResponsePayload, SedaEngine, SedaRequest, SedaResponse};
use seda_olap::Registry;
use seda_xmlstore::parse_collection;

fn engine() -> SedaEngine {
    let collection = parse_collection(vec![
        (
            "us2006.xml",
            r#"<country><name>United States</name><year>2006</year>
                 <economy><import_partners>
                   <item><trade_country>China</trade_country><percentage>15</percentage></item>
                   <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                 </import_partners></economy></country>"#,
        ),
        (
            "us2005.xml",
            r#"<country><name>United States</name><year>2005</year>
                 <economy><import_partners>
                   <item><trade_country>China</trade_country><percentage>13.8</percentage></item>
                 </import_partners></economy></country>"#,
        ),
    ])
    .unwrap();
    SedaEngine::build(collection, Registry::factbook_defaults(), seda_core::EngineConfig::default())
        .unwrap()
}

const QUERY: &str = r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#;
const REFINEMENT: &str = "WITH 0 IN /country/name \
     WITH 1 IN /country/economy/import_partners/item/trade_country \
     WITH 2 IN /country/economy/import_partners/item/percentage";

/// Executes `EXPLAIN ANALYZE {request}` and returns the transcript plus the
/// full response, asserting the annotations every statement must carry.
fn analyze(engine: &SedaEngine, request: &str) -> (String, SedaResponse) {
    let mut reader = engine.reader();
    let text = format!("EXPLAIN ANALYZE {request}");
    let parsed = SedaRequest::parse(&text).unwrap();
    assert!(parsed.explain && parsed.analyze, "{text}");
    let response = reader.execute_text(&text).unwrap();
    let transcript =
        response.explain_transcript().expect("analyze yields a transcript").to_string();
    assert!(transcript.contains("analyze:"), "{transcript}");
    assert!(transcript.contains("budget spent"), "{transcript}");
    assert!(transcript.contains("[plan]"), "{transcript}");
    assert!(transcript.contains("[execute]"), "{transcript}");
    assert!(!response.profile.spans.is_empty(), "profile must keep the span tree");
    // Forcing tracing for the analyzed request must not leave it on.
    assert!(!reader.tracing_enabled());
    let plain = reader.execute_text(request).unwrap();
    assert!(plain.profile.spans.is_empty(), "untraced requests record no spans");
    (transcript, response)
}

#[test]
fn topk_analyze_annotates_the_search_step() {
    let e = engine();
    let (transcript, response) = analyze(&e, &format!("TOPK 5 FOR {QUERY}"));
    assert!(transcript.contains("plan: TOPK"), "{transcript}");
    assert!(transcript.contains("[search]"), "{transcript}");
    assert!(transcript.contains("sorted="), "{transcript}");
    assert!(response.profile.rows > 0, "profile keeps the executed row count");
    assert!(response.profile.budget_spent > 0);
    assert!(response.profile.sorted_accesses > 0);
}

#[test]
fn contexts_analyze_annotates_the_summary_step() {
    let e = engine();
    let (transcript, response) = analyze(&e, &format!("CONTEXTS FOR {QUERY}"));
    assert!(transcript.contains("plan: CONTEXTS"), "{transcript}");
    assert!(transcript.contains("[context-summary]"), "{transcript}");
    assert!(response.profile.rows > 0);
}

#[test]
fn connections_analyze_annotates_search_and_discovery() {
    let e = engine();
    let (transcript, _) = analyze(&e, &format!("CONNECTIONS 5 FOR {QUERY}"));
    assert!(transcript.contains("plan: CONNECTIONS"), "{transcript}");
    assert!(transcript.contains("[search]"), "{transcript}");
    assert!(transcript.contains("[discover-connections]"), "{transcript}");
}

#[test]
fn results_analyze_annotates_the_complete_result_step() {
    let e = engine();
    let (transcript, response) = analyze(&e, &format!("RESULTS FOR {QUERY} {REFINEMENT}"));
    assert!(transcript.contains("plan: RESULTS"), "{transcript}");
    assert!(transcript.contains("[complete-results]"), "{transcript}");
    assert_eq!(response.profile.rows, 3, "both 2006 items plus the 2005 item");
}

#[test]
fn twig_analyze_reports_nodes_visited() {
    let e = engine();
    let (transcript, _) = analyze(&e, "TWIG /country/economy//trade_country");
    assert!(transcript.contains("plan: TWIG"), "{transcript}");
    assert!(transcript.contains("[twig-evaluate]"), "{transcript}");
    assert!(transcript.contains("visited="), "{transcript}");
}

#[test]
fn cube_analyze_annotates_derivation_and_aggregation() {
    let e = engine();
    let (transcript, _) = analyze(
        &e,
        &format!("CUBE import-trade-percentage BY import-country AGG sum FOR {QUERY} {REFINEMENT}"),
    );
    assert!(transcript.contains("plan: CUBE"), "{transcript}");
    assert!(transcript.contains("[complete-results]"), "{transcript}");
    assert!(transcript.contains("[derive-star-schema]"), "{transcript}");
    assert!(transcript.contains("[aggregate]"), "{transcript}");
}

#[test]
fn plain_explain_still_stops_after_planning() {
    let e = engine();
    let mut reader = e.reader();
    let response = reader.execute_text(&format!("EXPLAIN TOPK 5 FOR {QUERY}")).unwrap();
    let transcript = response.explain_transcript().unwrap();
    assert!(transcript.contains("plan: TOPK"), "{transcript}");
    assert!(!transcript.contains("analyze:"), "EXPLAIN must not execute: {transcript}");
    assert_eq!(response.profile.rows, 0);
    assert_eq!(response.profile.exec_secs, 0.0);
}

#[test]
fn analyze_round_trips_through_the_textual_front_end() {
    let text = format!("EXPLAIN ANALYZE TOPK 5 FOR {QUERY}");
    let parsed = SedaRequest::parse(&text).unwrap();
    let rendered = parsed.render();
    assert!(rendered.starts_with("EXPLAIN ANALYZE TOPK 5 FOR "), "{rendered}");
    // Rendering is a fixpoint: the rendered text re-parses to the same flags
    // and renders identically (terms are case-normalized on first parse).
    let reparsed = SedaRequest::parse(&rendered).unwrap();
    assert!(reparsed.explain && reparsed.analyze);
    assert_eq!(reparsed.render(), rendered);
}

#[test]
fn analyze_payload_is_the_explain_shape() {
    let e = engine();
    let mut reader = e.reader();
    let response = reader.execute_text(&format!("EXPLAIN ANALYZE CONTEXTS FOR {QUERY}")).unwrap();
    assert!(matches!(response.payload, ResponsePayload::Explain(_)));
    // The payload's own row count is zero (it is a transcript); the profile
    // keeps the execution's rows.
    assert_eq!(response.payload.rows(), 0);
    assert!(response.profile.rows > 0);
}
