//! The optimized Threshold-Algorithm searcher must return exactly the same
//! top-k answers as the exhaustive `search_naive` oracle — same tuples, same
//! scores (within 1e-9) — across randomized datagen corpora.
//!
//! This pins the whole optimized read path at once: the interned score-sorted
//! postings of `NodeIndex`, the CSR adjacency + cached components of
//! `DataGraph`, and the allocation-free join loop of `TopKSearcher`.

use proptest::prelude::*;

use seda_core::seda_topk::{SearchScratch, TermInput, TopKConfig, TopKSearcher};
use seda_core::{ContextSelections, EngineConfig, SedaEngine, SedaQuery};
use seda_datagen::{googlebase, mondial, GoogleBaseConfig, MondialConfig};
use seda_olap::Registry;
use seda_xmlstore::Collection;

fn engine(collection: Collection) -> SedaEngine {
    SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
        .expect("engine build")
}

/// Resolves a query string to concrete term inputs the searchers accept.
fn term_inputs(engine: &SedaEngine, query_text: &str) -> Vec<TermInput> {
    let collection = engine.collection();
    SedaQuery::parse(query_text)
        .expect("query parses")
        .terms
        .iter()
        .map(|t| match t.context.allowed_paths(collection) {
            Some(paths) => TermInput::with_paths(t.search.clone(), paths),
            None => TermInput::new(t.search.clone()),
        })
        .collect()
}

/// Asserts TA == naive: same tuple count, same scores within 1e-9, and the
/// same node tuples (both searchers break score ties by ascending node
/// tuples, so the sequences must agree exactly).
fn assert_equivalent(
    engine: &SedaEngine,
    terms: &[TermInput],
    k: usize,
) -> Result<(), TestCaseError> {
    let searcher = TopKSearcher::new(engine.collection(), engine.node_index(), engine.graph());
    let config = TopKConfig::with_k(k);
    let mut scratch = SearchScratch::new();
    let ta = searcher.search_with(terms, &config, &mut scratch);
    let naive = searcher.search_naive_with(terms, &config, &mut scratch);
    prop_assert_eq!(ta.tuples.len(), naive.tuples.len(), "result sizes differ");
    for (i, (a, b)) in ta.tuples.iter().zip(naive.tuples.iter()).enumerate() {
        prop_assert!(
            (a.score - b.score).abs() < 1e-9,
            "scores diverge at rank {}: TA {} vs naive {}",
            i,
            a.score,
            b.score
        );
        prop_assert_eq!(
            &a.nodes,
            &b.nodes,
            "tuples diverge at rank {}: TA {:?} vs naive {:?}",
            i,
            &a.nodes,
            &b.nodes
        );
    }
    // Neither search may have clipped candidates, otherwise the oracle
    // comparison would be vacuous.
    prop_assert_eq!(ta.stats.candidates_truncated, 0);
    prop_assert_eq!(naive.stats.candidates_truncated, 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mondial-like corpora: cross-document IDREF edges make the document
    /// components non-trivial, so this exercises component pruning and the
    /// cross-document BFS of the compactness scoring.
    #[test]
    fn ta_matches_naive_on_mondial(
        countries in 2usize..7,
        provinces in 1usize..8,
        cities in 1usize..10,
        seas in 1usize..4,
        seed in 0u64..1_000,
        k in 1usize..8,
    ) {
        let config = MondialConfig {
            countries,
            provinces,
            cities,
            seas,
            rivers: 2,
            organizations: 2,
            features: 2,
            seed,
        };
        let engine = engine(mondial::generate(&config).expect("generate mondial"));
        let terms = term_inputs(&engine, "(name, *) AND (population, *)");
        assert_equivalent(&engine, &terms, k)?;
    }

    /// Google-Base-like corpora: heterogeneous single-item documents with no
    /// cross edges, so every document is its own component and the join is
    /// dominated by component pruning and content scoring.
    #[test]
    fn ta_matches_naive_on_googlebase(
        items in 5usize..40,
        categories in 1usize..6,
        seed in 0u64..1_000,
        k in 1usize..8,
    ) {
        let config = GoogleBaseConfig { items, categories, attributes_per_category: 4, seed };
        let engine = engine(googlebase::generate(&config).expect("generate googlebase"));
        let terms = term_inputs(&engine, "(title, model) AND (price, *)");
        assert_equivalent(&engine, &terms, k)?;
    }
}

/// The fixed workloads of `BENCH_topk.json` agree between TA and the oracle
/// too (non-random sanity anchor for the property above).
#[test]
fn ta_matches_naive_on_fixed_small_workloads() {
    let engine = engine(mondial::generate(&MondialConfig::small()).expect("generate mondial"));
    let terms = term_inputs(&engine, "(name, *) AND (population, *)");
    let searcher = TopKSearcher::new(engine.collection(), engine.node_index(), engine.graph());
    let mut scratch = SearchScratch::new();
    let config = TopKConfig::with_k(10);
    let ta = searcher.search_with(&terms, &config, &mut scratch);
    let naive = searcher.search_naive_with(&terms, &config, &mut scratch);
    assert_eq!(ta.tuples.len(), naive.tuples.len());
    for (a, b) in ta.tuples.iter().zip(naive.tuples.iter()) {
        assert!((a.score - b.score).abs() < 1e-9);
        assert_eq!(a.nodes, b.nodes);
    }
    // The engine-level entry point agrees with the direct searcher.
    let via_engine = engine.top_k(
        &SedaQuery::parse("(name, *) AND (population, *)").unwrap(),
        &ContextSelections::none(),
        10,
    );
    assert_eq!(via_engine.tuples, ta.tuples);
}
