//! Resource-governed execution: every [`Budget`] ceiling must surface as a
//! typed [`SedaError::Limit`] naming the exhausted resource (or as a flagged
//! degraded prefix when the caller opts in), cancellation must surface as
//! [`SedaError::Cancelled`], and a breached request must leave the engine
//! fully serviceable.

use std::time::Duration;

use seda_core::{
    Budget, CancelToken, EngineConfig, RequestContext, SedaEngine, SedaError, SedaRequest,
};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::Registry;

fn engine() -> SedaEngine {
    let collection =
        factbook::generate(&FactbookConfig::paper_scaled(20, 3)).expect("generate factbook");
    SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
        .expect("engine build")
}

fn topk_request() -> SedaRequest {
    SedaRequest::parse(
        r#"TOPK 5 FOR (*, "United States") AND (trade_country, *) AND (percentage, *)"#,
    )
    .expect("topk request parses")
}

fn results_request() -> SedaRequest {
    SedaRequest::parse(
        r#"RESULTS FOR (*, "United States") AND (trade_country, *) AND (percentage, *)
           WITH 0 IN /country/name
           WITH 1 IN /country/economy/import_partners/item/trade_country
           WITH 2 IN /country/economy/import_partners/item/percentage"#,
    )
    .expect("results request parses")
}

/// Each budget knob, driven to zero, must produce `SedaError::Limit` naming
/// exactly its resource — never a panic, never a silent clip.
#[test]
fn each_exhausted_budget_names_its_resource() {
    let engine = engine();
    let mut reader = engine.reader();
    let topk = topk_request();
    let results = results_request();
    let cases: Vec<(Budget, &SedaRequest, &str)> = vec![
        (Budget::unlimited().with_max_sorted_accesses(0), &topk, "sorted accesses"),
        (Budget::unlimited().with_max_random_accesses(0), &topk, "random accesses"),
        (Budget::unlimited().with_max_candidates(0), &topk, "candidate tuples"),
        (Budget::unlimited().with_max_label_probes(0), &topk, "label probes"),
        (Budget::unlimited().with_deadline(Duration::ZERO), &topk, "deadline"),
        (Budget::unlimited().with_max_rows(0), &topk, "result rows"),
        (Budget::unlimited().with_max_rows(1), &results, "result rows"),
    ];

    for (budget, request, resource) in cases {
        let ctx = RequestContext::new(budget.clone());
        let err = reader
            .execute_governed(request, &ctx)
            .expect_err(&format!("budget {budget:?} must breach"));
        match err {
            SedaError::Limit { resource: named, .. } => {
                assert_eq!(named, resource, "budget {budget:?} must name its resource")
            }
            other => panic!("budget {budget:?} must yield Limit, got {other:?}"),
        }
    }

    // After every breach the reader and engine still answer correctly.
    let response = reader.execute(&topk).expect("engine remains serviceable");
    assert!(!response.top_k().expect("top-k payload").tuples.is_empty());
}

#[test]
fn twig_and_cube_budgets_cap_their_shapes() {
    let engine = engine();
    let mut reader = engine.reader();
    let twig = SedaRequest::parse("TWIG /country/economy/import_partners/item/trade_country")
        .expect("twig request parses");
    let full = reader.execute(&twig).expect("ungoverned twig");
    let full_rows = full.table().expect("table payload").len();
    assert!(full_rows > 1, "workload must produce enough twig matches to cap");

    let ctx = RequestContext::new(Budget::unlimited().with_max_twig_matches(1));
    let err = reader.execute_governed(&twig, &ctx).expect_err("twig ceiling must breach");
    assert!(
        matches!(err, SedaError::Limit { resource: "twig matches", spent, budget: 1 } if spent == full_rows),
        "{err:?}"
    );

    // Degraded opt-in keeps the prefix instead.
    let ctx = RequestContext::new(Budget::unlimited().with_max_twig_matches(1)).allow_degraded();
    let degraded = reader.execute_governed(&twig, &ctx).expect("degraded twig");
    assert!(degraded.profile.degraded);
    assert_eq!(degraded.table().expect("table payload").len(), 1);
    assert_eq!(degraded.table().unwrap().rows[0], full.table().unwrap().rows[0]);

    let cube = SedaRequest::parse(
        r#"CUBE import-trade-percentage BY import-country AGG sum
           FOR (*, "United States") AND (trade_country, *) AND (percentage, *)
           WITH 0 IN /country/name
           WITH 1 IN /country/economy/import_partners/item/trade_country
           WITH 2 IN /country/economy/import_partners/item/percentage"#,
    )
    .expect("cube request parses");
    let full_cells = reader.execute(&cube).expect("ungoverned cube").cube().unwrap().len();
    assert!(full_cells > 1, "workload must produce enough cube cells to cap");
    let ctx = RequestContext::new(Budget::unlimited().with_max_cube_cells(1));
    let err = reader.execute_governed(&cube, &ctx).expect_err("cube ceiling must breach");
    assert!(matches!(err, SedaError::Limit { resource: "cube cells", budget: 1, .. }), "{err:?}");
    let ctx = RequestContext::new(Budget::unlimited().with_max_cube_cells(1)).allow_degraded();
    let degraded = reader.execute_governed(&cube, &ctx).expect("degraded cube");
    assert!(degraded.profile.degraded);
    assert_eq!(degraded.cube().expect("cube payload").len(), 1);
}

#[test]
fn degraded_topk_is_a_prefix_of_the_full_answer() {
    let engine = engine();
    let mut reader = engine.reader();
    let request = topk_request();
    let full = reader.execute(&request).expect("ungoverned run");
    let full_tuples = &full.top_k().expect("top-k payload").tuples;

    // Enough random accesses to enumerate a few combinations, not all.
    let ctx = RequestContext::new(Budget::unlimited().with_max_random_accesses(4)).allow_degraded();
    let degraded = reader.execute_governed(&request, &ctx).expect("degraded run");
    assert!(degraded.profile.degraded, "breach with degraded opt-in must flag the profile");
    let tuples = &degraded.top_k().expect("top-k payload").tuples;
    assert!(tuples.len() <= full_tuples.len());
    for (got, want) in tuples.iter().zip(full_tuples) {
        assert_eq!(got.nodes, want.nodes, "degraded prefix must match the full ranking");
    }
    assert!(degraded.profile.budget_spent > 0);
}

#[test]
fn generous_budgets_change_nothing() {
    let engine = engine();
    let mut reader = engine.reader();
    let request = topk_request();
    let ungoverned = reader.execute(&request).expect("ungoverned run");
    let generous = Budget::unlimited()
        .with_deadline(Duration::from_secs(3600))
        .with_max_sorted_accesses(usize::MAX)
        .with_max_random_accesses(usize::MAX)
        .with_max_candidates(usize::MAX)
        .with_max_label_probes(u64::MAX)
        .with_max_rows(usize::MAX)
        .with_max_twig_matches(usize::MAX)
        .with_max_cube_cells(usize::MAX);
    let ctx = RequestContext::new(generous).with_cancel_token(CancelToken::new());
    let governed = reader.execute_governed(&request, &ctx).expect("governed run");
    assert!(!governed.profile.degraded);
    assert_eq!(governed.payload, ungoverned.payload, "generous ceilings must not change answers");
    assert!(governed.profile.budget_spent > 0);
}

#[test]
fn cancellation_surfaces_as_cancelled() {
    let engine = engine();
    let mut reader = engine.reader();
    let token = CancelToken::new();
    token.cancel();
    let ctx = RequestContext::unlimited().with_cancel_token(token);
    let err = reader.execute_governed(&topk_request(), &ctx).expect_err("cancelled request");
    assert_eq!(err, SedaError::Cancelled);
    // The same reader still serves uncancelled requests.
    assert!(reader.execute(&topk_request()).is_ok());
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Tiny budgets never panic: execution returns either a typed Limit
        /// breach from the budget catalog or a (possibly complete) answer,
        /// and the degraded-opt-in variant of the same budget never errors
        /// on a pure budget breach.
        #[test]
        fn tiny_budgets_yield_typed_limits_or_answers(
            sorted in 0usize..3,
            random in 0usize..3,
            candidates in 0usize..3,
            probes in 0u64..3,
            rows in 0usize..3,
        ) {
            let engine = engine();
            let mut reader = engine.reader();
            let budget = Budget::unlimited()
                .with_max_sorted_accesses(sorted)
                .with_max_random_accesses(random)
                .with_max_candidates(candidates)
                .with_max_label_probes(probes)
                .with_max_rows(rows);
            let request = topk_request();
            let strict = RequestContext::new(budget.clone());
            match reader.execute_governed(&request, &strict) {
                Ok(response) => prop_assert!(!response.profile.degraded),
                Err(SedaError::Limit { resource, .. }) => prop_assert!(
                    [
                        "sorted accesses",
                        "random accesses",
                        "candidate tuples",
                        "label probes",
                        "result rows",
                    ]
                    .contains(&resource),
                    "unexpected resource {resource:?}"
                ),
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
            let degraded = RequestContext::new(budget).allow_degraded();
            let response = reader.execute_governed(&request, &degraded);
            prop_assert!(response.is_ok(), "degraded budgets never error: {response:?}");
            prop_assert!(response.unwrap().profile.rows <= rows.max(5));
        }
    }
}
