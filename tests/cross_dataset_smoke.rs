//! Cross-data-set smoke tests: the full engine (indexes, dataguides, top-k,
//! summaries, complete results, cube derivation) must work on every synthetic
//! corpus, not just the Factbook running example — SEDA's whole point is
//! handling heterogeneous repositories it has never seen.

use seda_core::{ContextSelections, EngineConfig, SedaEngine, SedaQuery, Session};
use seda_datagen::Dataset;
use seda_olap::{BuildOptions, Registry, RelativeKey, SchemaDef};

fn engine_for(dataset: Dataset) -> SedaEngine {
    let collection = dataset.generate_small().unwrap();
    SedaEngine::build(collection, Registry::new(), EngineConfig::default()).unwrap()
}

#[test]
fn mondial_queries_cross_documents_via_idref_edges() {
    let engine = engine_for(Dataset::Mondial);
    assert!(engine.graph().cross_edge_count() > 0, "Mondial is densely linked by IDREFs");
    let query = SedaQuery::parse(r#"(/sea/name, *) AND (/country/name, *)"#).unwrap();
    let result = engine.complete_results(&query, &ContextSelections::none(), &[]).unwrap();
    assert!(!result.is_empty(), "seas and their bordering countries are connected");
    for row in &result.rows {
        assert_ne!(row[0].0.doc, row[1].0.doc, "sea and country live in different documents");
    }
}

#[test]
fn googlebase_supports_user_defined_facts_and_cubes() {
    let collection = Dataset::GoogleBase.generate_small().unwrap();
    let mut registry = Registry::new();
    registry.add(SchemaDef::dimension(
        "category",
        vec![seda_olap::ContextEntry::new("/item/category", RelativeKey::parse(&["/item/id"]))],
    ));
    registry.add(SchemaDef::fact(
        "price",
        vec![seda_olap::ContextEntry::new(
            "/item/price",
            RelativeKey::parse(&["/item/id", "/item/category"]),
        )],
    ));
    let engine = SedaEngine::build(collection, registry, EngineConfig::default()).unwrap();
    let query = SedaQuery::parse(r#"(category, *) AND (price, *)"#).unwrap();
    let result = engine.complete_results(&query, &ContextSelections::none(), &[]).unwrap();
    assert!(!result.is_empty());
    let build = engine.build_star_schema(&result, &BuildOptions::default());
    let fact = build.schema.fact("price").expect("price fact table");
    assert!(fact.dimensions_form_key());
    assert!(build.matching.dimensions.contains(&"category".to_string()));
}

#[test]
fn recipeml_sessions_explore_contexts() {
    let engine = engine_for(Dataset::RecipeMl);
    let mut session = Session::new(&engine);
    session.submit_text(r#"(item, *) AND (qty, *)"#).unwrap();
    let summary = session.context_summary().unwrap();
    assert_eq!(summary.buckets.len(), 2);
    assert!(!summary.buckets[0].entries.is_empty());
    let complete = session.complete_results().unwrap();
    assert!(!complete.is_empty());
    // Ingredients pair with the quantity of the same `ing` element.
    let c = engine.collection();
    for row in complete.rows.iter().take(50) {
        let item_parent = c.node(row[0].0).unwrap().parent.unwrap();
        let qty_grandparent = c
            .node(
                c.node(row[1].0)
                    .unwrap()
                    .parent
                    .map(|p| seda_xmlstore::NodeId::new(row[1].0.doc, p))
                    .unwrap(),
            )
            .unwrap()
            .parent
            .unwrap();
        assert_eq!(item_parent, qty_grandparent, "qty's amt parent and item share the same ing");
    }
}

#[test]
fn keyword_search_works_on_every_dataset() {
    for dataset in Dataset::ALL {
        let engine = engine_for(dataset);
        let query = SedaQuery::parse(r#"(*, *)"#).unwrap();
        let summary = engine.context_summary(&query);
        assert!(
            summary.buckets[0].entries.len() > 1,
            "{}: the match-all bucket lists text-bearing contexts",
            dataset.name()
        );
        let topk = engine.top_k(&query, &ContextSelections::none(), 5);
        assert!(!topk.tuples.is_empty(), "{}: top-k over match-all", dataset.name());
    }
}
