//! Optimizer equivalence: the compiled [`seda_core::PlanProgram`] executed by
//! the reader's interpreter must return byte-identical responses to the
//! pre-optimizer fixed-sequence executor (`execute_plan_unoptimized`, kept
//! verbatim as the oracle), across randomized datagen corpora and every
//! statement type.  Prepared statements must reproduce fresh executions too.
//!
//! Every rewrite pass is result-preserving by construction — normalization,
//! pushdown annotation, the single-keyword scan, component-prune elision and
//! access ordering all leave payloads *and* work counters unchanged — so the
//! comparison here is full structural equality of the `Result`, with one
//! carve-out: warm-cache prepared re-executions legitimately skip
//! connectivity label probes, so that single counter is masked in the
//! prepared-reuse comparison only.

use proptest::prelude::*;

use seda_core::{
    EngineConfig, RequestContext, ResponsePayload, SedaEngine, SedaError, SedaRequest,
};
use seda_datagen::{
    googlebase, mondial, recipeml, GoogleBaseConfig, MondialConfig, RecipeMlConfig,
};
use seda_olap::{ContextEntry, Registry, RelativeKey, SchemaDef};
use seda_xmlstore::Collection;

fn engine(collection: Collection, registry: Registry) -> SedaEngine {
    SedaEngine::build(collection, registry, EngineConfig::default()).expect("engine build")
}

/// Registry with a numeric fact over the Google-Base corpus so the CUBE
/// statement has something to aggregate.
fn googlebase_registry() -> Registry {
    let mut registry = Registry::new();
    registry.add(SchemaDef::dimension(
        "category",
        vec![ContextEntry::new("/item/category", RelativeKey::parse(&["/item/id"]))],
    ));
    registry.add(SchemaDef::fact(
        "price",
        vec![ContextEntry::new("/item/price", RelativeKey::parse(&["/item/id", "/item/category"]))],
    ));
    registry
}

/// Executes `text` through the optimizer pipeline (the interpreter over the
/// compiled program) and through the fixed-sequence oracle, and asserts the
/// two outcomes are structurally identical — payload, profile counters, or
/// the exact same typed error.
fn assert_program_matches_oracle(engine: &SedaEngine, text: &str) -> Result<(), TestCaseError> {
    let request = SedaRequest::parse(text).expect("request parses");
    let plan = engine.prepare(&request).expect("request prepares");
    let mut reader = engine.reader();
    let optimized = reader.execute_plan(&plan);
    let mut oracle_reader = engine.reader();
    let oracle = oracle_reader.execute_plan_unoptimized(&plan, &RequestContext::unlimited());
    match (&optimized, &oracle) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(&a.payload, &b.payload, "payload diverges: {}", text);
            prop_assert_eq!(a.profile.rows, b.profile.rows, "rows diverge: {}", text);
            prop_assert_eq!(
                a.profile.sorted_accesses,
                b.profile.sorted_accesses,
                "sorted accesses diverge: {}",
                text
            );
            prop_assert_eq!(
                a.profile.random_accesses,
                b.profile.random_accesses,
                "random accesses diverge: {}",
                text
            );
            prop_assert_eq!(
                a.profile.tuples_scored,
                b.profile.tuples_scored,
                "tuples scored diverge: {}",
                text
            );
            prop_assert_eq!(
                a.profile.label_probes,
                b.profile.label_probes,
                "label probes diverge: {}",
                text
            );
        }
        (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors diverge: {}", text),
        _ => prop_assert!(
            false,
            "outcomes diverge for {}: optimized {:?} vs oracle {:?}",
            text,
            optimized.as_ref().map(|r| r.profile.rows),
            oracle.as_ref().map(|r| r.profile.rows)
        ),
    }
    Ok(())
}

/// Masks the one counter warm-cache executions legitimately change.
fn normalized(mut payload: ResponsePayload) -> ResponsePayload {
    match &mut payload {
        ResponsePayload::TopK(result) => result.stats.label_probes = 0,
        ResponsePayload::Connections { top_k, .. } => top_k.stats.label_probes = 0,
        _ => {}
    }
    payload
}

/// Asserts a prepared statement re-executed several times keeps reproducing
/// a fresh `execute` of the same request (modulo label probes).
fn assert_prepared_matches_fresh(engine: &SedaEngine, text: &str) -> Result<(), TestCaseError> {
    let request = SedaRequest::parse(text).expect("request parses");
    let mut reader = engine.reader();
    let fresh = reader.execute(&request);
    let mut prepared = reader.prepare(&request).expect("request prepares");
    for round in 0..3 {
        let reused = prepared.execute(&mut reader);
        match (&fresh, &reused) {
            (Ok(a), Ok(b)) => prop_assert_eq!(
                normalized(a.payload.clone()),
                normalized(b.payload.clone()),
                "prepared round {} diverges: {}",
                round,
                text
            ),
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "errors diverge: {}", text),
            _ => prop_assert!(false, "outcomes diverge for {} at round {}", text, round),
        }
    }
    Ok(())
}

/// The six statement shapes over one corpus' query vocabulary.
fn statements(q: &str, single: &str, twig: &str, cube: Option<&str>, k: usize) -> Vec<String> {
    let mut texts = vec![
        format!("TOPK {k} FOR {q}"),
        format!("TOPK {k} FOR {single}"),
        format!("CONTEXTS FOR {q}"),
        format!("CONNECTIONS {k} FOR {q}"),
        format!("RESULTS FOR {q}"),
        format!("TWIG {twig}"),
    ];
    if let Some(cube) = cube {
        texts.push(cube.to_string());
    }
    texts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mondial-like corpora: IDREF-linked multi-document graphs, so the
    /// component-prune pass sees both single- and multi-component shapes.
    #[test]
    fn program_matches_oracle_on_mondial(
        countries in 2usize..7,
        provinces in 1usize..8,
        cities in 1usize..10,
        seas in 1usize..4,
        seed in 0u64..1_000,
        k in 1usize..8,
    ) {
        let config = MondialConfig {
            countries,
            provinces,
            cities,
            seas,
            rivers: 2,
            organizations: 2,
            features: 2,
            seed,
        };
        let engine = engine(mondial::generate(&config).expect("generate mondial"), Registry::new());
        let q = r#"(name, *) AND (population, *)"#;
        for text in statements(q, "(name, *)", "/country/name", None, k) {
            assert_program_matches_oracle(&engine, &text)?;
        }
        // A restricted term exercises normalize + pushdown concretely.
        assert_program_matches_oracle(
            &engine,
            &format!("TOPK {k} FOR {q} WITH 0 IN /country/name"),
        )?;
        assert_prepared_matches_fresh(&engine, &format!("TOPK {k} FOR {q}"))?;
    }

    /// Google-Base-like corpora: one document per item, no cross edges —
    /// every document is its own component — plus a registered numeric fact
    /// so the CUBE statement participates.
    #[test]
    fn program_matches_oracle_on_googlebase(
        items in 5usize..40,
        categories in 1usize..6,
        seed in 0u64..1_000,
        k in 1usize..8,
    ) {
        let config = GoogleBaseConfig { items, categories, attributes_per_category: 4, seed };
        let engine = engine(
            googlebase::generate(&config).expect("generate googlebase"),
            googlebase_registry(),
        );
        let q = r#"(category, *) AND (price, *)"#;
        let cube = format!("CUBE price BY category AGG sum FOR {q}");
        for text in statements(q, "(price, *)", "/item/category", Some(&cube), k) {
            assert_program_matches_oracle(&engine, &text)?;
        }
        assert_prepared_matches_fresh(&engine, &cube)?;
        assert_prepared_matches_fresh(&engine, &format!("CONNECTIONS {k} FOR {q}"))?;
    }

    /// RecipeML-like corpora: three document shapes under one root, deep
    /// nesting, no cross edges.
    #[test]
    fn program_matches_oracle_on_recipeml(
        recipes in 10usize..50,
        menu_percent in 0u8..20,
        nutrition_percent in 0u8..20,
        seed in 0u64..1_000,
        k in 1usize..8,
    ) {
        let config = RecipeMlConfig { recipes, menu_percent, nutrition_percent, seed };
        let engine =
            engine(recipeml::generate(&config).expect("generate recipeml"), Registry::new());
        let q = r#"(item, *) AND (qty, *)"#;
        for text in statements(q, "(item, *)", "/recipeml/recipe/head/title", None, k) {
            assert_program_matches_oracle(&engine, &text)?;
        }
        assert_prepared_matches_fresh(&engine, &format!("RESULTS FOR {q}"))?;
    }
}

/// Non-random anchors: the exact fixed corpora of the bench suite, plus the
/// degraded-k edge cases the strategies above rarely hit.
#[test]
fn program_matches_oracle_on_fixed_corpora_and_edge_ks() {
    let engine = engine(
        mondial::generate(&MondialConfig::small()).expect("generate mondial"),
        Registry::new(),
    );
    for k in [0, 1, 1000] {
        let text = format!("TOPK {k} FOR (name, *) AND (population, *)");
        assert_program_matches_oracle(&engine, &text).expect("equivalence");
        let text = format!("TOPK {k} FOR (name, *)");
        assert_program_matches_oracle(&engine, &text).expect("equivalence");
    }
}

/// `set_k` on a prepared statement keeps matching a freshly planned request
/// with the same k, including across the scan↔join strategy boundary.
#[test]
fn prepared_set_k_matches_fresh_plans() {
    let engine = engine(
        recipeml::generate(&RecipeMlConfig::small()).expect("generate recipeml"),
        Registry::new(),
    );
    let mut reader = engine.reader();
    let mut prepared = reader
        .prepare(&SedaRequest::parse("TOPK 2 FOR (item, *) AND (qty, *)").expect("parses"))
        .expect("prepares");
    for k in [1usize, 4, 9, 2] {
        assert!(prepared.set_k(k));
        let fresh = reader
            .execute(&SedaRequest::parse(&format!("TOPK {k} FOR (item, *) AND (qty, *)")).unwrap())
            .expect("fresh execution");
        let reused = prepared.execute(&mut reader).expect("prepared execution");
        assert_eq!(normalized(reused.payload), normalized(fresh.payload), "k={k}");
    }
}

/// Interpreter-level governance parity: a breach surfaces as the same typed
/// error through the program as through the oracle.
#[test]
fn program_matches_oracle_under_budgets() {
    let engine = engine(
        mondial::generate(&MondialConfig::small()).expect("generate mondial"),
        Registry::new(),
    );
    let request = SedaRequest::parse("TOPK 10 FOR (name, *) AND (population, *)").expect("parses");
    let plan = engine.prepare(&request).expect("prepares");
    let budget = seda_core::Budget::unlimited().with_max_label_probes(1);
    let ctx = RequestContext::new(budget.clone());
    let mut reader = engine.reader();
    let optimized = reader.execute_plan_governed(&plan, &ctx);
    let ctx = RequestContext::new(budget);
    let oracle = reader.execute_plan_unoptimized(&plan, &ctx);
    match (&optimized, &oracle) {
        (Err(a), Err(b)) => {
            assert_eq!(a, b);
            assert!(matches!(a, SedaError::Limit { .. }), "{a}");
        }
        other => panic!("expected matching Limit errors, got {other:?}"),
    }
}
