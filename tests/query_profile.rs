//! Read-path regression tests: document components are a build-time artifact
//! (built exactly once per engine, never per search), the engine's cached
//! search scratch does not change answers, and `QueryProfile` reports the
//! work a query performed.

use seda_core::{ContextSelections, EngineConfig, SedaEngine, SedaQuery};
use seda_datagen::{mondial, MondialConfig};
use seda_datagraph::doc_component_builds_on_this_thread;
use seda_olap::Registry;
use seda_topk::{TopKConfig, TopKSearcher};

fn small_engine() -> SedaEngine {
    let config = MondialConfig {
        countries: 4,
        provinces: 4,
        cities: 6,
        seas: 2,
        rivers: 2,
        organizations: 2,
        features: 2,
        seed: 7,
    };
    SedaEngine::build(
        mondial::generate(&config).expect("generate mondial"),
        Registry::factbook_defaults(),
        EngineConfig::default(),
    )
    .expect("engine build")
}

#[test]
fn doc_components_built_once_per_engine_never_per_search() {
    // The component counter is thread-local and the default build
    // (parallelism = 1) merges on this thread, so the delta is exact.
    let before = doc_component_builds_on_this_thread();
    let engine = small_engine();
    assert_eq!(
        doc_component_builds_on_this_thread(),
        before + 1,
        "engine build computes document components exactly once"
    );

    let query = SedaQuery::parse("(name, *) AND (population, *)").unwrap();
    let selections = ContextSelections::none();
    let searcher = TopKSearcher::new(engine.collection(), engine.node_index(), engine.graph());
    let terms: Vec<seda_topk::TermInput> = query
        .terms
        .iter()
        .map(|t| match t.context.allowed_paths(engine.collection()) {
            Some(paths) => seda_topk::TermInput::with_paths(t.search.clone(), paths),
            None => seda_topk::TermInput::new(t.search.clone()),
        })
        .collect();
    for k in 1..=10 {
        let _ = engine.top_k(&query, &selections, k);
        let _ = searcher.search(&terms, &TopKConfig::with_k(k));
        let _ = searcher.search_naive(&terms, &TopKConfig::with_k(k));
    }
    assert_eq!(
        doc_component_builds_on_this_thread(),
        before + 1,
        "searches (TA and naive) must reuse the graph's cached components"
    );
}

#[test]
fn cached_scratch_queries_match_across_repeats() {
    let engine = small_engine();
    let query = SedaQuery::parse("(name, *) AND (population, *)").unwrap();
    let selections = ContextSelections::none();
    // Repeated engine-level queries run through the shared cached scratch;
    // answers must be identical every time.
    let first = engine.top_k(&query, &selections, 10);
    assert!(!first.tuples.is_empty());
    for _ in 0..5 {
        assert_eq!(engine.top_k(&query, &selections, 10).tuples, first.tuples);
    }
}

#[test]
fn query_profile_reports_the_work() {
    let engine = small_engine();
    let query = SedaQuery::parse("(name, *) AND (population, *)").unwrap();
    let (result, profile) = engine.top_k_profiled(&query, &ContextSelections::none(), 5);
    assert!(!result.tuples.is_empty());
    assert_eq!(profile.stats, result.stats, "profile carries the search's own counters");
    assert!(profile.stats.sorted_accesses > 0);
    assert!(profile.stats.tuples_scored > 0);
    assert!(profile.stats.label_probes > 0, "connectivity checks must be accounted");
    assert_eq!(profile.stats.candidates_truncated, 0);
    assert!(profile.wall_secs > 0.0);
    let rendered = profile.render();
    assert!(rendered.contains("sorted"), "render mentions the counters: {rendered}");
}
