//! The precomputed connectivity oracle must agree with plain breadth-first
//! search — same `shortest_distance`, same path length, same `is_connected`
//! verdict — at **every** depth bound, including bounds beyond the hub-label
//! radius where the oracle is required to fall back to BFS.
//!
//! Three corpus shapes are exercised: Mondial-like (moderate IDREF webs
//! across documents), Google-Base-like (isolated single-item documents, the
//! centroid-tree labeling path), and a synthetic dense IDREF web that
//! cross-links every document into one large component (the adversarial case
//! for pruned landmark labeling).  A final set of tests pins that the labels
//! coming out of the shard → merge lifecycle are identical to a sequential
//! build, independent of shard order.

use proptest::prelude::*;

use seda_datagen::{googlebase, mondial, GoogleBaseConfig, MondialConfig};
use seda_datagraph::{
    bfs_is_connected_with, bfs_shortest_distance_with, bfs_shortest_path_with, is_connected_with,
    shortest_distance_with, shortest_path_with, DataGraph, GraphConfig, GraphShard,
    TraversalScratch, LABEL_RADIUS,
};
use seda_xmlstore::{parse_collection, Collection, NodeId};

/// Depth bounds straddling every regime of the oracle: trivial (0/1), well
/// inside the label radius, the searcher default (12), the radius itself, and
/// past the radius (where hub components must fall back to BFS).
fn depths() -> Vec<usize> {
    let r = LABEL_RADIUS as usize;
    vec![0, 1, 2, 5, 12, r, r + 4]
}

/// A deterministic spread of nodes across the collection's documents: the
/// root, a middle node and the last node of every `stride`-th document.
fn sample_nodes(collection: &Collection, stride: usize) -> Vec<NodeId> {
    let mut nodes = Vec::new();
    for (i, doc) in collection.documents().enumerate() {
        if i % stride.max(1) != 0 {
            continue;
        }
        let len = doc.len() as u32;
        nodes.push(NodeId::new(doc.id, 0));
        if len > 2 {
            nodes.push(NodeId::new(doc.id, len / 2));
        }
        if len > 1 {
            nodes.push(NodeId::new(doc.id, len - 1));
        }
    }
    nodes
}

/// Asserts oracle == BFS for every node pair at every depth bound: same
/// distance, same path existence and length, same pair connectivity.
fn assert_oracle_matches_bfs(graph: &DataGraph, nodes: &[NodeId]) -> Result<(), TestCaseError> {
    let mut oracle_scratch = TraversalScratch::new();
    let mut bfs_scratch = TraversalScratch::new();
    for &depth in &depths() {
        for &a in nodes {
            for &b in nodes {
                let got = shortest_distance_with(graph, &mut oracle_scratch, a, b, depth);
                let want = bfs_shortest_distance_with(graph, &mut bfs_scratch, a, b, depth);
                prop_assert_eq!(
                    got,
                    want,
                    "distance diverges for {:?} -> {:?} at depth {}",
                    a,
                    b,
                    depth
                );
                let got_path = shortest_path_with(graph, &mut oracle_scratch, a, b, depth);
                let want_path = bfs_shortest_path_with(graph, &mut bfs_scratch, a, b, depth);
                prop_assert_eq!(
                    got_path.as_ref().map(Vec::len),
                    want_path.as_ref().map(Vec::len),
                    "path length diverges for {:?} -> {:?} at depth {}",
                    a,
                    b,
                    depth
                );
                // A returned path must actually end at the target.
                if let Some(path) = &got_path {
                    if let Some(last) = path.last() {
                        prop_assert_eq!(last.node, b);
                    }
                }
                let pair = [a, b];
                prop_assert_eq!(
                    is_connected_with(graph, &mut oracle_scratch, &pair, depth),
                    bfs_is_connected_with(graph, &mut bfs_scratch, &pair, depth),
                    "pair connectivity diverges for {:?} -> {:?} at depth {}",
                    a,
                    b,
                    depth
                );
            }
        }
        // Tuple connectivity over larger tuples, matching the top-k join's
        // star-shaped usage.
        for tuple in nodes.chunks(3).filter(|t| t.len() == 3) {
            prop_assert_eq!(
                is_connected_with(graph, &mut oracle_scratch, tuple, depth),
                bfs_is_connected_with(graph, &mut bfs_scratch, tuple, depth),
                "tuple connectivity diverges for {:?} at depth {}",
                tuple,
                depth
            );
        }
    }
    Ok(())
}

/// A dense synthetic IDREF web: `docs` documents of `per_doc` items, each
/// item cross-referencing two pseudo-randomly chosen items in other
/// documents.  Every document ends up in one component and the cross-link
/// density defeats tree-only shortcuts — the adversarial shape for the hub
/// labeling.
fn idref_web(docs: usize, per_doc: usize, stride: usize) -> Collection {
    let mut sources = Vec::new();
    for d in 0..docs {
        let mut xml = String::from("<hub>");
        for i in 0..per_doc {
            let d2 = (d * 7 + i * stride + 1) % docs;
            let i2 = (i + d + 1) % per_doc;
            let d3 = (d + i + stride) % docs;
            xml.push_str(&format!(
                r#"<item id="n{d}_{i}"><link to_idref="n{d2}_{i2}"/><link to_idref="n{d3}_{i}"/></item>"#
            ));
        }
        xml.push_str("</hub>");
        sources.push((format!("web{d}.xml"), xml));
    }
    parse_collection(sources.iter().map(|(n, x)| (n.as_str(), x.as_str())))
        .expect("idref web parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Mondial-like corpora: cross-document IDREF edges produce multi-document
    /// components answered by hub labels; isolated documents take the
    /// centroid-tree path.
    #[test]
    fn oracle_matches_bfs_on_mondial(
        countries in 2usize..6,
        provinces in 1usize..6,
        cities in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let config = MondialConfig {
            countries,
            provinces,
            cities,
            seas: 2,
            rivers: 2,
            organizations: 2,
            features: 2,
            seed,
        };
        let collection = mondial::generate(&config).expect("generate mondial");
        let graph = DataGraph::build(&collection, &GraphConfig::default());
        let nodes = sample_nodes(&collection, 3);
        assert_oracle_matches_bfs(&graph, &nodes)?;
    }

    /// Google-Base-like corpora: no cross edges, every document is its own
    /// component — the pure centroid-tree labeling regime.
    #[test]
    fn oracle_matches_bfs_on_googlebase(
        items in 5usize..25,
        categories in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let config = GoogleBaseConfig { items, categories, attributes_per_category: 4, seed };
        let collection = googlebase::generate(&config).expect("generate googlebase");
        let graph = DataGraph::build(&collection, &GraphConfig::default());
        let nodes = sample_nodes(&collection, 4);
        assert_oracle_matches_bfs(&graph, &nodes)?;
    }

    /// Dense IDREF cross-link webs: one big component, high cross-edge
    /// density, distances that straddle the label radius.
    #[test]
    fn oracle_matches_bfs_on_dense_idref_webs(
        docs in 2usize..7,
        per_doc in 2usize..6,
        stride in 1usize..5,
    ) {
        let collection = idref_web(docs, per_doc, stride);
        let graph = DataGraph::build(&collection, &GraphConfig::default());
        let nodes = sample_nodes(&collection, 1);
        assert_oracle_matches_bfs(&graph, &nodes)?;
    }

    /// Labels coming out of the shard → merge lifecycle are identical to the
    /// sequential build, regardless of shard order.
    #[test]
    fn shard_merged_labels_match_sequential_build(
        docs in 2usize..7,
        per_doc in 2usize..6,
        reverse in 0u8..2,
    ) {
        let collection = idref_web(docs, per_doc, 2);
        let config = GraphConfig::default();
        let sequential = DataGraph::build(&collection, &config);
        let mut shards: Vec<GraphShard> = collection
            .documents()
            .map(|doc| DataGraph::build_shard(&collection, doc.id, &config))
            .collect();
        if reverse == 1 {
            shards.reverse();
        }
        let merged = DataGraph::merge(&collection, shards);
        prop_assert_eq!(merged.connectivity(), sequential.connectivity());
        prop_assert_eq!(&merged, &sequential);
    }
}

/// Non-random anchor: the fixed mondial workload of the benchmark reports,
/// plus its shard-merge determinism, outside proptest so a failure names no
/// seed.
#[test]
fn oracle_matches_bfs_on_fixed_mondial() {
    let collection = mondial::generate(&MondialConfig::small()).expect("generate mondial");
    let config = GraphConfig::default();
    let graph = DataGraph::build(&collection, &config);
    let nodes = sample_nodes(&collection, 9);

    let mut oracle_scratch = TraversalScratch::new();
    let mut bfs_scratch = TraversalScratch::new();
    for &depth in &[2usize, 12, LABEL_RADIUS as usize + 4] {
        for &a in &nodes {
            for &b in &nodes {
                assert_eq!(
                    shortest_distance_with(&graph, &mut oracle_scratch, a, b, depth),
                    bfs_shortest_distance_with(&graph, &mut bfs_scratch, a, b, depth),
                    "distance diverges for {a:?} -> {b:?} at depth {depth}"
                );
            }
        }
    }

    let shards: Vec<GraphShard> = collection
        .documents()
        .map(|doc| DataGraph::build_shard(&collection, doc.id, &config))
        .collect();
    let merged = DataGraph::merge(&collection, shards);
    assert_eq!(merged.connectivity(), graph.connectivity());
    assert_eq!(merged, graph);
}
