//! Reader-handle concurrency: N threads holding N `SedaReader`s over one
//! shared engine must (a) never touch the engine's shared scratch mutex and
//! (b) produce byte-identical results to sequential execution through a
//! single reader.

use seda_core::{EngineConfig, SedaEngine, SedaRequest, SedaResponse};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::Registry;

fn engine() -> SedaEngine {
    let collection =
        factbook::generate(&FactbookConfig::paper_scaled(20, 3)).expect("generate factbook");
    SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
        .expect("engine build")
}

fn workload() -> Vec<SedaRequest> {
    let query = r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#;
    let refinements = "WITH 0 IN /country/name \
                       WITH 1 IN /country/economy/import_partners/item/trade_country \
                       WITH 2 IN /country/economy/import_partners/item/percentage";
    let texts = [
        format!("TOPK 5 FOR {query}"),
        "TOPK 1 FOR (trade_country, *)".to_string(),
        format!("CONTEXTS FOR {query}"),
        format!("CONNECTIONS 5 FOR {query}"),
        format!("RESULTS FOR {query} {refinements}"),
        "TWIG /country/economy/import_partners/item/trade_country".to_string(),
        format!("CUBE import-trade-percentage BY import-country AGG sum FOR {query} {refinements}"),
        format!("EXPLAIN TOPK 5 FOR {query}"),
    ];
    texts.iter().map(|t| SedaRequest::parse(t).expect("workload request parses")).collect()
}

/// Renders the deterministic parts of a response (everything except wall
/// times) so runs can be compared byte-for-byte.
///
/// The optimizer's access-order pass annotates EXPLAIN transcripts with
/// engine-lifetime execution statistics ("prior profile: …"), which
/// legitimately advance as the workload records requests; that one line is
/// masked so the comparison pins everything else byte-for-byte.
fn fingerprint(response: &SedaResponse) -> String {
    let rendered = format!(
        "{:?}|rows={}|sorted={}|random={}|scored={}|probes={}",
        response.payload,
        response.profile.rows,
        response.profile.sorted_accesses,
        response.profile.random_accesses,
        response.profile.tuples_scored,
        response.profile.label_probes,
    );
    match rendered.find("prior profile:") {
        Some(start) => {
            // Inside the Debug-escaped transcript the line ends at `\n`
            // (two characters).
            let end = rendered[start..].find("\\n").map(|n| start + n).unwrap_or(rendered.len());
            format!("{}{}", &rendered[..start], &rendered[end..])
        }
        None => rendered,
    }
}

#[test]
fn concurrent_readers_match_sequential_byte_for_byte() {
    let engine = engine();
    let requests = workload();

    // Sequential baseline: one reader executes the whole workload.
    let mut reader = engine.reader();
    let baseline: Vec<String> = requests
        .iter()
        .map(|r| fingerprint(&reader.execute(r).expect("sequential execution")))
        .collect();

    let before = engine.shared_scratch_queries();
    // N threads, each with its own reader, each running the full workload.
    let n_threads = 4;
    let per_thread: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut reader = engine.reader();
                    requests
                        .iter()
                        .map(|r| fingerprint(&reader.execute(r).expect("concurrent execution")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reader thread")).collect()
    });

    for (t, results) in per_thread.iter().enumerate() {
        assert_eq!(
            results, &baseline,
            "thread {t} must produce byte-identical results to sequential execution"
        );
    }
    assert_eq!(
        engine.shared_scratch_queries(),
        before,
        "reader handles must never run through the engine's shared scratch mutex"
    );
}

#[test]
fn execute_batch_fans_out_without_touching_the_engine_mutex() {
    let engine = engine();
    let requests = workload();
    let mut reader = engine.reader();
    let baseline: Vec<String> = requests
        .iter()
        .map(|r| fingerprint(&reader.execute(r).expect("sequential execution")))
        .collect();

    let before = engine.shared_scratch_queries();
    for parallelism in [1, 4] {
        let batched = engine.execute_batch(&requests, parallelism);
        let fingerprints: Vec<String> =
            batched.iter().map(|r| fingerprint(r.as_ref().expect("batch response"))).collect();
        assert_eq!(fingerprints, baseline, "parallelism={parallelism}");
    }
    assert_eq!(engine.shared_scratch_queries(), before);
}

#[test]
fn repeated_reader_queries_reuse_scratch_deterministically() {
    let engine = engine();
    let mut reader = engine.reader();
    let request = SedaRequest::parse(
        r#"TOPK 10 FOR (*, "United States") AND (trade_country, *) AND (percentage, *)"#,
    )
    .unwrap();
    let first = fingerprint(&reader.execute(&request).unwrap());
    for _ in 0..5 {
        assert_eq!(
            fingerprint(&reader.execute(&request).unwrap()),
            first,
            "scratch reuse must not change answers"
        );
    }
}
