//! Experiment A1: sweeping the dataguide overlap threshold.  The paper fixes
//! 40% and notes that the effectiveness of merging "depends on the dataset,
//! ranging from a factor of 3 to a factor of 100"; higher thresholds merge
//! less.  These tests pin the monotone behaviour and the per-dataset ordering
//! of reduction factors.

use seda_datagen::Dataset;
use seda_dataguide::DataGuideSet;

fn reduction(dataset: Dataset, threshold: f64) -> (usize, usize, f64) {
    let collection = dataset.generate_small().unwrap();
    let guides = DataGuideSet::build(&collection, threshold).unwrap();
    let stats = guides.stats(collection.len());
    (collection.len(), guides.len(), stats.reduction_factor)
}

#[test]
fn guide_count_grows_with_the_threshold() {
    for dataset in Dataset::ALL {
        let collection = dataset.generate_small().unwrap();
        let mut previous = 0usize;
        for threshold in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let guides = DataGuideSet::build(&collection, threshold).unwrap();
            assert!(
                guides.len() >= previous,
                "{}: guide count must not shrink as the threshold rises ({} -> {} at {threshold})",
                dataset.name(),
                previous,
                guides.len()
            );
            previous = guides.len();
        }
    }
}

#[test]
fn regular_datasets_reduce_more_than_heterogeneous_ones() {
    let (_, _, recipe) = reduction(Dataset::RecipeMl, 0.4);
    let (_, _, google) = reduction(Dataset::GoogleBase, 0.4);
    let (_, _, factbook) = reduction(Dataset::WorldFactbook, 0.4);
    // RecipeML (3 shapes) reduces the most; the Factbook the least — the
    // ordering the paper's Table 1 exhibits.
    assert!(recipe > google, "recipe {recipe} vs google {google}");
    assert!(google > factbook, "google {google} vs factbook {factbook}");
    assert!(factbook >= 1.0);
}

#[test]
fn threshold_one_only_merges_subsets() {
    // At a threshold > 1.0 nothing can merge except exact subsets, so the
    // number of dataguides equals the number of distinct "maximal" shapes.
    let collection = Dataset::GoogleBase.generate_small().unwrap();
    let strict = DataGuideSet::build(&collection, 1.01).unwrap();
    let at_one = DataGuideSet::build(&collection, 1.0).unwrap();
    assert_eq!(strict.len(), at_one.len(), "identical shapes still collapse at threshold 1.0");
    // Google Base categories have identical path sets per category, so even
    // the strictest threshold keeps one guide per category.
    let loose = DataGuideSet::build(&collection, 0.4).unwrap();
    assert_eq!(strict.len(), loose.len());
}

#[test]
fn total_summary_size_shrinks_when_merging() {
    let collection = Dataset::Mondial.generate_small().unwrap();
    let merged = DataGuideSet::build(&collection, 0.4).unwrap();
    let unmerged = DataGuideSet::build(&collection, 1.01).unwrap();
    let merged_paths = merged.stats(collection.len()).total_paths;
    let unmerged_paths = unmerged.stats(collection.len()).total_paths;
    assert!(
        merged_paths <= unmerged_paths,
        "merging reduces the number and total size of dataguides ({merged_paths} vs {unmerged_paths})"
    );
}
