//! Experiment S1: the structural statistics of the World-Factbook-like corpus
//! that the paper quotes in Sec. 1 and Sec. 5 — a long tail of rare paths,
//! `/country` in almost every document, country names matching many distinct
//! contexts, and schema evolution across years.

use std::collections::HashSet;

use seda_datagen::{factbook, FactbookConfig};
use seda_textindex::{ContextIndex, CountStorage, FullTextQuery};

fn corpus() -> seda_xmlstore::Collection {
    factbook::generate(&FactbookConfig::paper_scaled(120, 6)).unwrap()
}

#[test]
fn country_path_is_prominent_but_not_universal() {
    let c = corpus();
    let freq = c.path_document_frequency();
    let country = c.paths().get_str(c.symbols(), "/country").unwrap();
    let in_docs = freq[&country];
    // Paper: 1577 of 1600 documents.
    assert!(in_docs < c.len(), "a few territory-rooted documents must exist");
    assert!(in_docs as f64 >= 0.95 * c.len() as f64, "{in_docs}/{}", c.len());
}

#[test]
fn distinct_paths_form_a_long_tail() {
    let c = corpus();
    assert!(
        c.distinct_path_count() > 400,
        "expected a large number of distinct paths, got {}",
        c.distinct_path_count()
    );
    let freq = c.path_document_frequency();
    let rare = freq.values().filter(|&&f| f <= 2).count();
    let prominent = freq.values().filter(|&&f| f as f64 >= 0.9 * c.len() as f64).count();
    assert!(
        rare > prominent,
        "the tail of rare paths dominates ({rare} rare vs {prominent} prominent)"
    );
}

#[test]
fn united_states_matches_many_distinct_contexts() {
    let c = corpus();
    let index = ContextIndex::build(&c, CountStorage::DocumentStore);
    let contexts = index.paths_matching(&FullTextQuery::phrase("United States"));
    // Paper: 27 distinct paths.  The generator reproduces the same order of
    // magnitude (country name, capital, currency, import/export partners,
    // neighbors, refugee origins, aid donors, …); the exact count grows with
    // corpus size, so assert the qualitative claim: clearly more than the
    // 2–3 contexts a user would naively expect.
    assert!(contexts.len() >= 5, "only {} contexts match \"United States\"", contexts.len());
}

#[test]
fn refugees_path_is_rare() {
    let c = corpus();
    let freq = c.path_document_frequency();
    let refugees = c
        .paths()
        .get_str(c.symbols(), "/country/transnational_issues/refugees/country_of_origin")
        .expect("refugees path exists");
    let f = freq[&refugees];
    // Paper: 186 of 1600 documents (~12%).
    assert!(f * 100 / c.len() <= 25, "refugees path should be rare, found in {f}/{}", c.len());
    assert!(f > 0);
}

#[test]
fn schema_evolution_splits_gdp_by_year() {
    let c = corpus();
    let gdp = c.paths().get_str(c.symbols(), "/country/economy/GDP").unwrap();
    let gdp_ppp = c.paths().get_str(c.symbols(), "/country/economy/GDP_ppp").unwrap();
    let year_path = c.paths().get_str(c.symbols(), "/country/year").unwrap();
    let mut gdp_years = HashSet::new();
    for node in c.nodes_with_path(gdp) {
        let doc = c.document(node.doc).unwrap();
        gdp_years.insert(doc.content(doc.nodes_with_path(year_path)[0]));
    }
    let mut ppp_years = HashSet::new();
    for node in c.nodes_with_path(gdp_ppp) {
        let doc = c.document(node.doc).unwrap();
        ppp_years.insert(doc.content(doc.nodes_with_path(year_path)[0]));
    }
    assert!(gdp_years.iter().all(|y| y.parse::<u16>().unwrap() < 2005));
    assert!(ppp_years.iter().all(|y| y.parse::<u16>().unwrap() >= 2005));
    assert!(!gdp_years.is_empty() && !ppp_years.is_empty());
}

#[test]
fn both_context_index_designs_agree_on_buckets() {
    let c = factbook::generate(&FactbookConfig::small()).unwrap();
    let doc_store = ContextIndex::build(&c, CountStorage::DocumentStore);
    let postings = ContextIndex::build(&c, CountStorage::PostingLists);
    for query in [
        FullTextQuery::phrase("United States"),
        FullTextQuery::keywords("trade country"),
        FullTextQuery::keywords("percentage"),
        FullTextQuery::keywords("import"),
    ] {
        assert_eq!(doc_store.context_bucket(&query), postings.context_bucket(&query));
    }
    assert!(postings.count_entries() >= doc_store.count_entries());
}
