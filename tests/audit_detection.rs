//! Seeded-corruption detection suite: every frozen arena class of every
//! substrate carries a test-only corruption hook; injecting each corruption
//! into a fully built engine must make [`SedaEngine::verify`] report exactly
//! that violation class, and freshly built engines — over the synthetic
//! corpora and over randomized collections — must always pass.
//!
//! This is the integration-level counterpart of the per-crate unit tests in
//! each substrate's `audit` module: the corruptions here travel through
//! `SedaEngine::substrates_mut()`, proving the engine-level aggregation
//! attributes violations to the right substrate.

use seda_core::metrics::names;
use seda_core::{EngineConfig, SedaEngine};
use seda_datagen::Dataset;
use seda_dataguide::GuideId;
use seda_olap::Registry;
use seda_xmlstore::{parse_collection, DocId};

/// A small heterogeneous corpus exercising every substrate: an IDREF cross
/// edge (graph labels), a repeated term with distinct scores ("united" in two
/// documents of different length — swappable postings) and two distinct
/// document shapes (two dataguides with a populated path→guide index).
fn engine() -> SedaEngine {
    let collection = parse_collection(vec![
        (
            "sea.xml",
            r#"<sea id="sea-1"><name>Pacific</name>
                 <bordering country_idref="cty-us"/></sea>"#,
        ),
        ("us.xml", r#"<country id="cty-us"><name>United States</name><year>2006</year></country>"#),
        (
            "mx.xml",
            r#"<country id="cty-mx"><name>United Mexican States</name><year>2003</year></country>"#,
        ),
    ])
    .unwrap();
    SedaEngine::build(collection, Registry::new(), EngineConfig::default()).unwrap()
}

/// Asserts that the engine audit fails, that every violation is attributed to
/// `substrate`, and that the injected `class` is among the reported classes.
fn expect_violation(engine: &SedaEngine, substrate: &str, class: &str) {
    let violations = engine.verify().expect_err("corrupted engine must fail its audit");
    assert!(!violations.is_empty());
    assert!(
        violations.iter().all(|v| v.substrate == substrate),
        "expected only {substrate} violations: {violations:?}"
    );
    assert!(
        violations.iter().any(|v| v.invariant == class),
        "expected a {class} violation: {violations:?}"
    );
}

#[test]
fn fresh_engine_passes_its_audit() {
    let e = engine();
    e.verify().unwrap();
    assert!(e.build_profile().verify_ms >= 0.0);
}

#[test]
fn swapped_sibling_deweys_are_detected_as_xmlstore_dewey_order() {
    let mut e = engine();
    // us.xml is document 1; nodes 1 and 2 are the name/year sibling leaves.
    let us = DocId(1);
    let d1 = e.collection().document(us).unwrap().node(1).unwrap().dewey.clone();
    let d2 = e.collection().document(us).unwrap().node(2).unwrap().dewey.clone();
    {
        let (collection, ..) = e.substrates_mut();
        collection.corrupt_document(us, |doc| {
            doc.corrupt_node_dewey(1, d2);
            doc.corrupt_node_dewey(2, d1);
        });
    }
    expect_violation(&e, "xmlstore", "dewey-order");
}

#[test]
fn swapped_postings_are_detected_as_textindex_postings_sorted() {
    let mut e = engine();
    {
        let (_, node_index, ..) = e.substrates_mut();
        let term = node_index.term_dict().get("united").expect("indexed term");
        let (start, end) = node_index.posting_range(term);
        assert!(end - start >= 2, "'united' must have two postings to swap");
        node_index.corrupt_swap_sorted_postings(start, start + 1);
    }
    expect_violation(&e, "textindex", "postings-sorted");
}

#[test]
fn broken_posting_offset_is_detected_as_textindex_csr_offsets() {
    let mut e = engine();
    {
        let (_, node_index, ..) = e.substrates_mut();
        node_index.corrupt_posting_offset(1, u32::MAX);
    }
    expect_violation(&e, "textindex", "csr-offsets");
}

#[test]
fn bogus_context_path_is_detected_as_textindex_context_paths() {
    let mut e = engine();
    {
        let (_, _, context_index, ..) = e.substrates_mut();
        context_index.corrupt_insert_text_path(seda_xmlstore::PathId(u32::MAX / 2));
    }
    expect_violation(&e, "textindex", "context-paths");
}

#[test]
fn broken_adjacency_offset_is_detected_as_datagraph_csr_offsets() {
    let mut e = engine();
    {
        let (_, _, _, graph, _) = e.substrates_mut();
        graph.corrupt_adj_offset(1, u32::MAX);
    }
    expect_violation(&e, "datagraph", "csr-offsets");
}

#[test]
fn dropped_connectivity_labels_are_detected_as_datagraph_labels_sound() {
    let mut e = engine();
    {
        let (_, _, _, graph, _) = e.substrates_mut();
        graph.corrupt_clear_labels(0);
    }
    expect_violation(&e, "datagraph", "labels-sound");
}

#[test]
fn desynced_path_index_is_detected_as_dataguide_path_index() {
    let mut e = engine();
    let c = e.collection();
    let name = c.paths().get_str(c.symbols(), "/country/name").unwrap();
    {
        let (.., guides) = e.substrates_mut();
        assert!(guides.corrupt_drop_path_index(name), "path must be indexed");
    }
    expect_violation(&e, "dataguide", "path-index");
}

#[test]
fn reassigned_document_is_detected_as_dataguide_assignment() {
    let mut e = engine();
    {
        let (.., guides) = e.substrates_mut();
        guides.corrupt_reassign_document(DocId(0), GuideId(999));
    }
    expect_violation(&e, "dataguide", "assignment");
}

#[test]
fn histogram_bucket_drift_is_detected_as_metrics_histogram_buckets() {
    let mut e = engine();
    {
        // Record a real latency so the corrupted histogram is non-empty.
        let mut reader = e.reader();
        reader.execute_text("TOPK 5 FOR (name, *)").unwrap();
    }
    let histogram = e
        .metrics_mut()
        .corrupt_histogram(names::REQUEST_LATENCY_SECONDS, "TOPK")
        .expect("registered histogram");
    assert!(histogram.count() > 0, "the TOPK request must have recorded a latency");
    histogram.corrupt_bucket(0, 3);
    expect_violation(&e, "metrics", "histogram-buckets");
}

#[test]
fn swapped_histogram_bounds_are_detected_as_metrics_histogram_buckets() {
    let mut e = engine();
    e.metrics_mut()
        .corrupt_histogram(names::REQUEST_LATENCY_SECONDS, "TWIG")
        .expect("registered histogram")
        .corrupt_swap_bounds(3, 200);
    expect_violation(&e, "metrics", "histogram-buckets");
}

#[test]
fn inverted_histogram_minmax_is_detected_as_metrics_histogram_minmax() {
    let mut e = engine();
    {
        let mut reader = e.reader();
        reader.execute_text("TOPK 5 FOR (name, *)").unwrap();
    }
    e.metrics_mut()
        .corrupt_histogram(names::REQUEST_LATENCY_SECONDS, "TOPK")
        .expect("registered histogram")
        .corrupt_minmax();
    expect_violation(&e, "metrics", "histogram-minmax");
}

#[test]
fn fresh_engines_pass_over_every_datagen_corpus() {
    // All four synthetic corpus shapes, including the RecipeML generator —
    // sequential and shard-parallel builds alike must freeze audit-clean
    // arenas (the build itself re-checks this, so a failure here would
    // surface as a build error too).
    for dataset in Dataset::ALL {
        for parallelism in [1, 3] {
            let collection = dataset.generate_small().unwrap();
            let engine = SedaEngine::build(
                collection,
                Registry::new(),
                EngineConfig { parallelism, ..EngineConfig::default() },
            )
            .unwrap_or_else(|e| panic!("{} (parallelism {parallelism}): {e}", dataset.name()));
            engine.verify().unwrap_or_else(|v| {
                panic!("{} (parallelism {parallelism}): {v:?}", dataset.name())
            });
            assert!(engine.build_profile().verify_ms >= 0.0);
        }
    }
}

#[test]
fn mondial_full_engine_audit_stays_under_100ms() {
    let collection = Dataset::Mondial.generate_small().unwrap();
    let engine = SedaEngine::build(collection, Registry::new(), EngineConfig::default()).unwrap();
    let verify_ms = engine.build_profile().verify_ms;
    assert!(verify_ms < 100.0, "mondial full-engine verify took {verify_ms:.2}ms, budget is 100ms");
}

mod random_corpora {
    use super::*;
    use proptest::prelude::*;

    /// A random two-level collection over a tiny vocabulary, mixing two
    /// document shapes so dataguide merging has real work to do.
    fn random_collection(words: &[u8]) -> seda_xmlstore::Collection {
        let mut c = seda_xmlstore::Collection::new();
        let vocab = ["alpha", "beta", "gamma", "delta united"];
        for (i, chunk) in words.chunks(3).enumerate() {
            let shape = i % 2;
            c.add_document(format!("d{i}.xml"), |b| {
                b.start_element(if shape == 0 { "doc" } else { "item" })?;
                for (j, &w) in chunk.iter().enumerate() {
                    b.leaf(&format!("field{j}"), vocab[w as usize % vocab.len()])?;
                }
                b.end_element()?;
                Ok(())
            })
            .unwrap();
        }
        c
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Freshly built engines over randomized corpora always pass their
        /// structural audit, sequential or shard-parallel.
        #[test]
        fn freshly_built_engines_always_pass(
            words in proptest::collection::vec(0u8..4, 1..24),
            parallelism in 1usize..4,
        ) {
            let c = random_collection(&words);
            let engine = SedaEngine::build(
                c,
                Registry::new(),
                EngineConfig { parallelism, ..EngineConfig::default() },
            )
            .unwrap();
            prop_assert!(engine.verify().is_ok());
        }
    }
}
